"""Tests for the experiment runner, named configs, reporting and figure harnesses."""

import pytest

from repro.experiments import (
    ExperimentRunner,
    baseline_config,
    constable_config,
    constable_engine_config,
    eves_config,
    eves_constable_config,
    figures,
    format_table,
    named_configs,
)
from repro.experiments.reporting import format_mapping, format_percent, format_speedup, per_suite_table


@pytest.fixture(scope="module")
def small_runner():
    """One workload per suite, short traces: shared by all harness tests."""
    return ExperimentRunner(per_suite=1, instructions=2500)


# --------------------------------------------------------------------- configs

def test_named_configs_build_valid_core_configs():
    for name, factory in named_configs().items():
        config = factory()
        assert config.rename_width == 6, name


def test_constable_engine_config_uses_experiment_threshold():
    config = constable_engine_config()
    assert config.confidence_threshold < 30
    assert constable_engine_config(confidence_threshold=30).confidence_threshold == 30


def test_config_factories_attach_expected_mechanisms():
    assert baseline_config().constable is None and baseline_config().lvp is None
    assert constable_config().constable is not None
    assert eves_config().lvp == "eves"
    combined = eves_constable_config()
    assert combined.lvp == "eves" and combined.constable is not None


# ------------------------------------------------------------------- reporting

def test_format_helpers():
    assert format_percent(0.051) == "5.1%"
    assert format_speedup(1.0512) == "1.051x"
    table = format_table(["a", "b"], [("x", 1), ("yy", 22)], title="t")
    assert "t" in table and "yy" in table
    mapping = format_mapping({"k": "v"})
    assert "k" in mapping
    suites = per_suite_table({"Client": {"constable": 1.05}},
                             title="fig")
    assert "Client" in suites and "constable" in suites


# ---------------------------------------------------------------------- runner

def test_runner_workload_generation(small_runner):
    workloads = small_runner.workloads()
    assert len(workloads) == 5
    for run in workloads.values():
        assert len(run.trace) == 2500
        assert run.report.total_dynamic_loads() > 0


def test_runner_caches_results(small_runner):
    first = small_runner.run_config("baseline", baseline_config())
    second = small_runner.run_config("baseline", baseline_config())
    for name in first:
        assert first[name] is second[name]


def test_runner_speedups_and_geomean(small_runner):
    small_runner.run_config("baseline", baseline_config())
    small_runner.run_config("constable", constable_config())
    speedups = small_runner.speedups("constable")
    assert len(speedups) == 5
    assert all(0.8 < value < 1.5 for value in speedups.values())
    by_suite = small_runner.speedups_by_suite("constable")
    assert "GEOMEAN" in by_suite
    assert 0.9 < by_suite["GEOMEAN"] < 1.3


def test_runner_metric_ratio(small_runner):
    small_runner.run_config("baseline", baseline_config())
    small_runner.run_config("constable", constable_config())
    ratios = small_runner.metric_ratio("constable",
                                       lambda r: r.power_events["l1d_accesses"])
    assert all(value <= 1.01 for value in ratios.values())


def test_runner_smt_pairs(small_runner):
    pairs = small_runner.smt_pairs(max_pairs=2)
    assert len(pairs) == 2
    assert all(a != b for a, b in pairs)


def test_smt_pairs_order_is_pinned():
    """Regression: the exact pairing order is part of the runner's contract.

    ``smt_pairs`` previously split the workload-name list in half, so changing
    ``per_suite`` reshuffled *every* pairing and invalidated any cached or
    published SMT numbers.  The round-robin pairing is pinned here: a uniform
    ``per_suite`` change only appends pairs, and ``max_pairs`` only truncates.
    """
    one = ExperimentRunner(per_suite=1, instructions=1000)
    assert one.smt_pairs() == [("client_00", "enterprise_00"),
                               ("fspec_00", "ispec_00")]
    two = ExperimentRunner(per_suite=2, instructions=1000)
    pairs_two = two.smt_pairs()
    assert pairs_two == [("client_00", "enterprise_00"), ("fspec_00", "ispec_00"),
                         ("server_00", "client_01"), ("enterprise_01", "fspec_01"),
                         ("ispec_01", "server_01")]
    # Growing per_suite appends; it never reshuffles the existing prefix.
    assert pairs_two[:len(one.smt_pairs())] == one.smt_pairs()
    # max_pairs is a pure truncation of the same list.
    for limit in range(len(pairs_two) + 1):
        assert two.smt_pairs(max_pairs=limit) == pairs_two[:limit]
    # Pair members are always distinct, cross-suite where sizes allow.
    assert all(a.split("_")[0] != b.split("_")[0] for a, b in pairs_two)
    # Pairing is derived from specs alone: no trace generation required.
    assert two._workloads is None


def test_run_smt_config_memoises_per_pair():
    runner = ExperimentRunner(per_suite=2, instructions=1000,
                              suites=("Client", "Server"))
    first = runner.run_smt_config("baseline", baseline_config(), max_pairs=1)
    assert len(first) == 1
    # A wider rerun reuses the committed pair and only simulates the new one.
    second = runner.run_smt_config("baseline", baseline_config(), max_pairs=2)
    assert len(second) == 2
    pair = next(iter(first))
    assert second[pair] is first[pair], "committed SMT results must be reused"


def test_run_smt_config_failure_mid_sweep_is_atomic():
    """A config factory raising mid-SMT-sweep must not commit partial results."""
    runner = ExperimentRunner(per_suite=2, instructions=1000,
                              suites=("Client", "Server"))
    calls = {"count": 0}

    def flaky_factory():
        calls["count"] += 1
        if calls["count"] > 1:
            raise RuntimeError("factory exploded mid-sweep")
        return constable_config()

    with pytest.raises(RuntimeError, match="exploded"):
        runner.run_smt_config("flaky", flaky_factory, max_pairs=2)
    assert calls["count"] > 1
    assert runner._smt_results.get("flaky", {}) == {}

    # The sweep stays usable afterwards.
    results = runner.run_smt_config("flaky", constable_config(), max_pairs=2)
    assert set(results) == set(runner.smt_pairs(max_pairs=2))
    for smt in results.values():
        assert smt.cycles > 0 and len(smt.per_thread_ipc) == 2


def test_runner_rejects_bad_parameters():
    with pytest.raises(ValueError):
        ExperimentRunner(instructions=0)


def test_run_config_failure_mid_sweep_is_atomic():
    """A config factory raising mid-sweep must not leave partial results behind.

    Regression test: previously each workload's result was committed as it was
    simulated, so a factory raising on the third workload left the first two
    populated and ``speedups``/geomean aggregation silently used the subset.
    """
    runner = ExperimentRunner(per_suite=1, instructions=1000,
                              suites=("Client", "Server"))
    runner.run_config("baseline", baseline_config())
    calls = {"count": 0}

    def flaky_factory():
        calls["count"] += 1
        if calls["count"] > 1:
            raise RuntimeError("factory exploded mid-sweep")
        return constable_config()

    with pytest.raises(RuntimeError, match="exploded"):
        runner.run_config("flaky", flaky_factory)
    assert calls["count"] > 1, "the factory must have been consulted more than once"
    for run in runner.workloads().values():
        assert "flaky" not in run.results, "no partial results may be committed"
    assert runner.speedups("flaky") == {}
    assert runner.geomean_speedup("flaky") == 1.0

    # The sweep stays usable: a working config afterwards covers every workload.
    results = runner.run_config("flaky", constable_config())
    assert set(results) == set(runner.workloads())
    assert all("flaky" in run.results for run in runner.workloads().values())


def test_run_config_simulation_failure_is_atomic(monkeypatch):
    """An executor raising during simulation also commits nothing."""
    from repro.experiments import runner as runner_module

    runner = ExperimentRunner(per_suite=1, instructions=1000,
                              suites=("Client", "Server"))
    original = runner_module.OutOfOrderCore.run
    calls = {"count": 0}

    def failing_run(self):
        calls["count"] += 1
        if calls["count"] > 1:
            raise RuntimeError("simulator crashed")
        return original(self)

    monkeypatch.setattr(runner_module.OutOfOrderCore, "run", failing_run)
    with pytest.raises(RuntimeError, match="crashed"):
        runner.run_config("baseline", baseline_config())
    for run in runner.workloads().values():
        assert "baseline" not in run.results
    monkeypatch.setattr(runner_module.OutOfOrderCore, "run", original)
    results = runner.run_config("baseline", baseline_config())
    assert set(results) == set(runner.workloads())


# --------------------------------------------------------------------- figures

def test_fig3_characterisation(small_runner):
    result = figures.fig3_global_stable_characterisation(small_runner)
    assert 0.0 < result["global_stable_fraction_avg"] < 1.0
    assert set(result["global_stable_fraction_by_suite"]) == set(small_runner.suites)
    assert "text" in result


def test_fig6_load_port_utilisation(small_runner):
    result = figures.fig6_load_port_utilisation(small_runner)
    assert 0.0 < result["load_utilised_cycle_fraction"] < 1.0
    assert 0.0 <= result["stable_blocking_fraction_of_utilised"] <= 1.0


def test_fig7_headroom_contains_all_configs(small_runner):
    result = figures.fig7_headroom(small_runner)
    assert set(result["geomean"]) == {"ideal_stable_lvp", "ideal_stable_lvp_fetch_elim",
                                      "2x_load_width", "ideal_constable"}
    assert all(value > 0.9 for value in result["geomean"].values())


def test_fig11_and_fig12(small_runner):
    fig11 = figures.fig11_speedup_nosmt(small_runner)
    assert set(fig11["geomean"]) == {"eves", "constable", "eves+constable",
                                     "eves+ideal_constable"}
    fig12 = figures.fig12_per_workload(small_runner)
    assert fig12["total_workloads"] == 5
    assert 0 <= fig12["constable_wins"] <= 5


def test_fig13_categories(small_runner):
    result = figures.fig13_load_categories(small_runner)
    assert set(result["geomean_speedups"]) == {"pc_relative_only", "stack_relative_only",
                                               "register_relative_only", "all_loads"}


def test_fig16_and_fig17_coverage(small_runner):
    fig16 = figures.fig16_coverage(small_runner)
    assert 0.0 < fig16["coverage"]["constable"] < 1.0
    assert fig16["coverage"]["eves+constable"] >= fig16["coverage"]["constable"] * 0.9
    fig17 = figures.fig17_stable_breakdown(small_runner)
    assert 0.0 <= fig17["breakdown"]["global_stable_and_eliminated"] <= 1.0


def test_fig18_and_fig19(small_runner):
    fig18 = figures.fig18_resource_utilisation(small_runner)
    assert fig18["l1d_access_reduction"]["mean"] > 0.0
    fig19 = figures.fig19_power(small_runner)
    assert fig19["relative_core_power"]["baseline"] == pytest.approx(1.0)
    assert fig19["relative_l1d_power"]["constable"] < 1.0


def test_fig21_and_fig22(small_runner):
    fig21 = figures.fig21_ordering_violations(small_runner)
    assert fig21["violation_fraction"]["mean"] < 0.05
    fig22 = figures.fig22_amt_invalidation(small_runner)
    assert set(fig22["speedup"]) == {"constable", "constable_amt_i"}


def test_tables():
    table1 = figures.table1_storage_overhead()
    assert table1["storage_kb"]["total"] == pytest.approx(12.4, abs=0.3)
    table3 = figures.table3_energy_estimates()
    assert set(table3["estimates"]) == {"sld", "rmt", "amt"}


# ------------------------------------------------------- degenerate-run guards

def test_speedup_paths_survive_zero_cycle_results(small_runner):
    """Degenerate runs (zero-cycle results from tiny traces) must be skipped
    by the speedup aggregations instead of crashing geomean or dividing by
    zero — regression for the harness paths feeding figs. 11/14/15."""
    import dataclasses

    small_runner.run_config("baseline", baseline_config())
    workloads = small_runner.workloads()
    for run in workloads.values():
        run.results["degenerate"] = dataclasses.replace(
            run.results["baseline"], cycles=0)
    assert small_runner.speedups("degenerate") == {}
    assert small_runner.geomean_speedup("degenerate") == 1.0
    summary = small_runner.speedups_by_suite("degenerate")
    assert summary["GEOMEAN"] == 1.0
    # A single healthy workload is enough to yield a real aggregate again.
    first = next(iter(workloads.values()))
    first.results["degenerate"] = first.results["baseline"]
    assert small_runner.speedups("degenerate") != {}
    assert small_runner.geomean_speedup("degenerate") == pytest.approx(1.0)
    for run in workloads.values():
        del run.results["degenerate"]


def test_fig14_survives_zero_cycle_smt_results():
    """fig14's per-pair speedup loop must skip zero-cycle pairs."""
    runner = ExperimentRunner(per_suite=2, instructions=1000,
                              suites=("Client", "Server"))
    result = figures.fig14_speedup_smt2(runner, max_pairs=1)
    assert set(result["geomean_speedups"]) == {"eves", "constable", "eves+constable"}
    # Zero out one side after the fact and rerun the aggregation path: the
    # memoised results make this cheap, and the degenerate pair must drop out.
    for results in runner._smt_results.values():
        for pair, smt in results.items():
            smt.result.cycles = 0
    degenerate = figures.fig14_speedup_smt2(runner, max_pairs=1)
    assert all(value == 1.0 for value in degenerate["geomean_speedups"].values())


def test_main_figures_run_on_minimal_configs():
    """figs. 11, 14 and 15 must complete on a minimal one-workload-per-suite,
    short-trace runner without tripping the strict geomean."""
    runner = ExperimentRunner(per_suite=1, instructions=600,
                              suites=("Client", "Server"))
    fig11 = figures.fig11_speedup_nosmt(runner)
    fig14 = figures.fig14_speedup_smt2(runner, max_pairs=1)
    fig15 = figures.fig15_prior_works(runner)
    for result in (fig11["geomean"], fig14["geomean_speedups"],
                   fig15["geomean_speedups"]):
        assert all(value > 0 for value in result.values())
