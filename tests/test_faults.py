"""Chaos, supervision and resume tests for the fault-tolerant sweep stack.

Three layers under test:

* ``experiments/faults.py`` — the deterministic :class:`FaultPlan` harness
  (parsing, validation, budgets, scoping);
* ``experiments/parallel.py`` — per-job supervision: retries with backoff,
  wall timeouts, pool rebuilds after worker crashes, in-process degradation
  and dead-lettering, with the chaos differential asserting that a sweep
  which crashed/hung/corrupted its way home is **bit-identical** to a clean
  serial run;
* the commit layer — partial-wave journaling to the on-disk cache, resume
  (only missing jobs re-execute, asserted via executed-job counts), the
  health ledger, and the CLI's distinct exit codes (3 = dead-lettered,
  130 = interrupted) plus ``repro sweep --resume``.

Everything here injects faults only through ``REPRO_FAULT_PLAN`` via
monkeypatch, so a failing test can never leave chaos armed for its
neighbours.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pickle

import pytest

from repro.cli import EXIT_DEAD_LETTER, EXIT_INTERRUPT, main
from repro.experiments.cache import (
    ResultCache,
    compact_persisted_stats,
    persist_health_stats,
    persisted_cache_stats,
)
from repro.experiments.configs import baseline_config, constable_config
from repro.experiments.faults import (
    CORRUPTED_RESULT,
    FAULT_PLAN_ENV,
    FaultPlan,
    FaultSpec,
    active_fault_plan,
)
from repro.experiments.orchestrator import FigurePlan, SweepOrchestrator
from repro.experiments.parallel import (
    JOB_TIMEOUT_ENV,
    MAX_RETRIES_ENV,
    JobExecutionError,
    ParallelExperimentRunner,
)
from repro.experiments.reporting import (
    format_dead_letters,
    format_health_report,
    format_persisted_health,
)
from repro.experiments.runner import ExperimentRunner, SweepExecutionError

#: Reduced sweep shared by the chaos tests: 2 workloads, short traces.
SUITES = ("Client", "Server")
INSTRUCTIONS = 1200


@pytest.fixture(autouse=True)
def _no_inherited_chaos(monkeypatch):
    """Tests opt into chaos explicitly; never inherit it from the session."""
    monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
    monkeypatch.delenv(MAX_RETRIES_ENV, raising=False)
    monkeypatch.delenv(JOB_TIMEOUT_ENV, raising=False)


def _serial_results(cache=None):
    runner = ExperimentRunner(per_suite=1, instructions=INSTRUCTIONS,
                              suites=SUITES, cache=cache)
    return {name: runner.run_config(name, factory())
            for name, factory in (("baseline", baseline_config),
                                   ("constable", constable_config))}


# ---------------------------------------------------------------- plan layer


def test_plan_parse_budget_and_first_match_wins():
    plan = FaultPlan.parse(json.dumps({
        "sim:baseline/client_00": {"kind": "crash", "times": 2},
        "sim:baseline/*": {"kind": "raise"},
    }))
    # The specific rule shadows the glob; its budget covers attempts 1-2.
    assert plan.lookup("sim:baseline/client_00", 1).kind == "crash"
    assert plan.lookup("sim:baseline/client_00", 2).kind == "crash"
    assert plan.lookup("sim:baseline/client_00", 3) is None
    assert plan.lookup("sim:baseline/server_00", 1).kind == "raise"
    assert plan.lookup("sim:constable/client_00", 1) is None


@pytest.mark.parametrize("text", [
    "not json at all",
    "[1, 2, 3]",
    '{"sim:*": "crash"}',
    '{"sim:*": {"times": 2}}',
    '{"sim:*": {"kind": "explode"}}',
    '{"sim:*": {"kind": "raise", "times": 0}}',
    '{"sim:*": {"kind": "hang", "seconds": -1}}',
    '{"sim:*": {"kind": "raise", "scope": "everywhere"}}',
    '{"sim:*": {"kind": "raise", "typo": 1}}',
], ids=["not-json", "not-object", "spec-not-object", "missing-kind",
        "bad-kind", "zero-times", "negative-seconds", "bad-scope",
        "unknown-field"])
def test_malformed_plans_raise(text):
    with pytest.raises(ValueError):
        FaultPlan.parse(text)


def test_active_plan_reads_inline_json_and_files(tmp_path, monkeypatch):
    monkeypatch.setenv(FAULT_PLAN_ENV, '{"gen:*": {"kind": "corrupt"}}')
    assert active_fault_plan().lookup("gen:client_00", 1).kind == "corrupt"
    path = tmp_path / "plan.json"
    path.write_text('{"sim:*": {"kind": "hang", "seconds": 0.5}}',
                    encoding="utf-8")
    monkeypatch.setenv(FAULT_PLAN_ENV, str(path))
    assert active_fault_plan().lookup("sim:x/y", 1).seconds == 0.5
    monkeypatch.setenv(FAULT_PLAN_ENV, str(tmp_path / "missing.json"))
    with pytest.raises(ValueError, match="neither inline JSON"):
        active_fault_plan()


def test_malformed_plan_fails_runner_construction_loudly(monkeypatch):
    monkeypatch.setenv(FAULT_PLAN_ENV, '{"sim:*": {"kind": "explode"}}')
    with pytest.raises(ValueError, match="fault kind"):
        ParallelExperimentRunner(per_suite=1, instructions=INSTRUCTIONS,
                                 suites=SUITES, max_workers=2)


def test_job_execution_error_survives_pickling():
    error = JobExecutionError("sim:baseline/client_00", 2,
                              "Traceback ...\nValueError: boom")
    clone = pickle.loads(pickle.dumps(error))
    assert clone.label == error.label
    assert clone.attempt == 2
    assert clone.remote_traceback == error.remote_traceback
    assert "sim:baseline/client_00" in str(clone)
    assert "ValueError: boom" in str(clone)


# ----------------------------------------------------- the chaos differential


def test_chaos_sweep_is_bit_identical_to_clean_serial(monkeypatch):
    """Crash + hang + corrupt + raise, all recovered; results unchanged.

    This is the tentpole differential: a worker crash breaks (and rebuilds)
    the pool, a hung job trips the wall timeout and terminates its worker, a
    corrupted result is rejected by validation, and a raising job retries —
    yet every committed statistic must equal the fault-free serial run's.
    """
    monkeypatch.setenv(FAULT_PLAN_ENV, json.dumps({
        "sim:baseline/client_00": {"kind": "crash", "times": 1},
        "sim:constable/server_00": {"kind": "hang", "seconds": 30},
        "sim:constable/client_00": {"kind": "corrupt", "times": 1},
        "sim:baseline/server_00": {"kind": "raise", "times": 2},
    }))
    with ParallelExperimentRunner(per_suite=1, instructions=INSTRUCTIONS,
                                  suites=SUITES, max_workers=2,
                                  max_retries=3, job_timeout=3.0,
                                  retry_backoff_seconds=0.01) as chaotic:
        results = {name: chaotic.run_config(name, factory())
                   for name, factory in (("baseline", baseline_config),
                                          ("constable", constable_config))}
        health = chaotic.health
    assert results == _serial_results()
    assert not health.healthy
    assert not health.dead_letters
    assert health.jobs == 6  # 2 gen (trace generation) + 4 sim jobs
    assert health.retries >= 4  # crash + timeout + corrupt + 2x raise
    assert health.pool_rebuilds >= 2  # crash collateral + hang termination
    assert health.timeouts >= 1
    assert health.attempts > health.jobs


def test_worker_exceptions_carry_job_identity_and_traceback(monkeypatch):
    """Satellite: no failure crosses the process boundary anonymously."""
    monkeypatch.setenv(FAULT_PLAN_ENV, json.dumps({
        "sim:baseline/client_00": {"kind": "raise", "times": 99,
                                   "scope": "anywhere"},
    }))
    with ParallelExperimentRunner(per_suite=1, instructions=INSTRUCTIONS,
                                  suites=SUITES, max_workers=2, max_retries=1,
                                  retry_backoff_seconds=0.0) as runner:
        with pytest.raises(SweepExecutionError) as excinfo:
            runner.run_config("baseline", baseline_config())
    (letter,) = excinfo.value.dead_letters
    assert letter.label == "sim:baseline/client_00"
    assert letter.attempts == 2  # 1 + max_retries pool attempts
    assert "InjectedFault" in letter.error  # the remote traceback text
    assert "InjectedFault" in letter.fallback_error
    assert "sim:baseline/client_00" in str(excinfo.value)


def test_exhausted_pool_budget_degrades_to_in_process(monkeypatch):
    """Worker-scoped faults burn the pool budget; the in-parent rung saves it."""
    monkeypatch.setenv(FAULT_PLAN_ENV, json.dumps({
        "sim:*": {"kind": "raise", "times": 99, "scope": "worker"},
    }))
    with ParallelExperimentRunner(per_suite=1, instructions=INSTRUCTIONS,
                                  suites=SUITES, max_workers=2, max_retries=1,
                                  retry_backoff_seconds=0.0) as runner:
        results = runner.run_config("baseline", baseline_config())
        health = runner.health
    assert results == _serial_results()["baseline"]
    assert health.degraded == 2
    assert not health.dead_letters
    # 2 gen jobs succeed first try; each sim job burns 1 + max_retries.
    assert health.attempts == 6


def test_supervision_env_defaults_are_lenient(monkeypatch):
    monkeypatch.setenv(MAX_RETRIES_ENV, "several")
    monkeypatch.setenv(JOB_TIMEOUT_ENV, "-3")
    with pytest.warns(RuntimeWarning):
        runner = ParallelExperimentRunner(per_suite=1,
                                          instructions=INSTRUCTIONS,
                                          suites=SUITES, max_workers=2)
    assert runner.max_retries == 2
    assert runner.job_timeout is None
    runner.close()
    # Explicit parameters stay strict.
    with pytest.raises(ValueError):
        ParallelExperimentRunner(suites=SUITES, max_workers=2, max_retries=-1)
    with pytest.raises(ValueError):
        ParallelExperimentRunner(suites=SUITES, max_workers=2, job_timeout=0)


# -------------------------------------------------- partial commit and resume


def test_failed_sweep_journals_successes_and_resumes(tmp_path, monkeypatch):
    """The acceptance differential: kill one job, resume runs only the rest.

    The first (faulted) sweep dead-letters ``sim:baseline/client_00`` but
    journals the surviving ``server_00`` result to the cache before raising.
    The resumed sweep must then execute exactly the one missing job — asserted
    via the cache's executed-store counters — and end bit-identical to a
    clean serial sweep.
    """
    monkeypatch.setenv(FAULT_PLAN_ENV, json.dumps({
        "sim:baseline/client_00": {"kind": "raise", "times": 99,
                                   "scope": "anywhere"},
    }))
    with ParallelExperimentRunner(per_suite=1, instructions=INSTRUCTIONS,
                                  suites=SUITES, max_workers=2, max_retries=0,
                                  retry_backoff_seconds=0.0,
                                  cache=ResultCache(tmp_path)) as runner:
        with pytest.raises(SweepExecutionError):
            runner.run_config("baseline", baseline_config())

    monkeypatch.delenv(FAULT_PLAN_ENV)
    resumed = ExperimentRunner(per_suite=1, instructions=INSTRUCTIONS,
                               suites=SUITES, cache=ResultCache(tmp_path))
    results = resumed.run_config("baseline", baseline_config())
    assert resumed.cache.stats.hits == 1    # server_00 came from the journal
    assert resumed.cache.stats.stores == 1  # only client_00 re-executed
    assert results == _serial_results()["baseline"]


def test_failed_wave_journals_and_resume_executes_only_missing(tmp_path,
                                                               monkeypatch):
    """Orchestrated waves journal partial successes too (runner.py commit layer
    + orchestrator._journal_partial_wave), and the resumed wave's own dedup
    stats prove only the missing job executed."""
    plan = FigurePlan("sweep", configs={"baseline": baseline_config(),
                                        "constable": constable_config()})
    monkeypatch.setenv(FAULT_PLAN_ENV, json.dumps({
        "sim:constable/client_00": {"kind": "raise", "times": 99,
                                    "scope": "anywhere"},
    }))
    with ParallelExperimentRunner(per_suite=1, instructions=INSTRUCTIONS,
                                  suites=SUITES, max_workers=2, max_retries=0,
                                  retry_backoff_seconds=0.0,
                                  cache=ResultCache(tmp_path)) as runner:
        with pytest.raises(SweepExecutionError):
            SweepOrchestrator(runner).execute([plan])

    monkeypatch.delenv(FAULT_PLAN_ENV)
    with ParallelExperimentRunner(per_suite=1, instructions=INSTRUCTIONS,
                                  suites=SUITES, max_workers=2,
                                  cache=ResultCache(tmp_path)) as resumed:
        stats = SweepOrchestrator(resumed).execute([plan])
        wave = {name: resumed.run_config(name, plan.configs[name])
                for name in plan.configs}
    assert stats.planned == 4
    assert stats.cache_warm == 3  # the three journaled successes
    assert stats.executed == 1    # only the dead-lettered job re-executes
    assert stats.cold_jobs == ["constable/client_00"]
    assert wave == _serial_results()


def test_in_memory_commit_stays_atomic_on_failure(monkeypatch):
    """The atomic-commit contract survives the partial-commit layer: a failed
    sweep without a cache leaves no trace in the runner's aggregates."""
    monkeypatch.setenv(FAULT_PLAN_ENV, json.dumps({
        "sim:baseline/client_00": {"kind": "raise", "times": 99,
                                   "scope": "anywhere"},
    }))
    with ParallelExperimentRunner(per_suite=1, instructions=INSTRUCTIONS,
                                  suites=SUITES, max_workers=2, max_retries=0,
                                  retry_backoff_seconds=0.0) as runner:
        with pytest.raises(SweepExecutionError):
            runner.run_config("baseline", baseline_config())
        # Not even the succeeding workload committed to the in-memory store.
        assert all("baseline" not in run.results
                   for run in runner.workloads().values())


# ----------------------------------------------- crash-during-commit stress


def _crash_inside_commit(directory: str, key: str, result) -> None:
    """Child process body: die mid-``cache.put``, between temp-write and rename."""
    def die(src, dst):
        os._exit(1)
    os.replace = die
    ResultCache(directory).put(key, result)
    os._exit(0)  # unreachable: put() must hit the patched replace


def test_crash_during_commit_leaves_reclaimable_orphan(tmp_path):
    """Satellite: a writer killed mid-``os.replace`` cannot corrupt the cache.

    A forked child dies inside ``put`` after writing the temp file but before
    the atomic rename.  The entry must not exist, the orphan ``.tmp`` must be
    reported (once old enough) and purged by ``verify``, and a rerun commits
    the same entry bit-identically.
    """
    runner = ExperimentRunner(per_suite=1, instructions=INSTRUCTIONS,
                              suites=("Client",), cache=ResultCache(tmp_path))
    (job,) = runner.plan_jobs("baseline", baseline_config())
    assert job.cache_key is not None
    result = runner._execute_jobs([job])[job.workload]

    context = multiprocessing.get_context("fork")
    child = context.Process(target=_crash_inside_commit,
                            args=(str(tmp_path), job.cache_key, result))
    child.start()
    child.join(timeout=60)
    assert child.exitcode == 1  # died inside put(), not at the success exit

    cache = ResultCache(tmp_path)
    assert cache.get(job.cache_key) is None
    temps = list(tmp_path.glob("*/.*.tmp"))
    assert len(temps) == 1  # the abandoned temp file survived the crash

    # Young temp files belong to live writers and are left alone ...
    assert cache.verify().ok
    # ... but with the age guard dropped, verify reports and purges it.
    cache.ORPHAN_TEMP_AGE_SECONDS = 0.0
    report = cache.verify(purge=True)
    assert [os.path.basename(path) for path in report.orphan_temp] \
        == [temps[0].name]
    assert report.purged == 1
    assert not list(tmp_path.glob("*/.*.tmp"))

    cache.put(job.cache_key, result)
    assert cache.verify().ok
    assert cache.get(job.cache_key) == result


# ------------------------------------------------------- health observability


def test_health_ledger_aggregates_and_survives_compaction(tmp_path):
    persist_health_stats(tmp_path, {"jobs": 4, "attempts": 7, "retries": 3,
                                    "timeouts": 1, "pool_rebuilds": 2,
                                    "degraded": 1, "dead_lettered": 0})
    persist_health_stats(tmp_path, {"jobs": 2, "attempts": 2})
    summary = persisted_cache_stats(tmp_path)
    assert summary["health"]["runs"] == 2
    assert summary["health"]["jobs"] == 6
    assert summary["health"]["attempts"] == 9
    assert summary["health"]["retries"] == 3
    compact_persisted_stats(tmp_path)
    assert persisted_cache_stats(tmp_path)["health"] == summary["health"]


def test_runner_close_flushes_health_to_ledger(tmp_path, monkeypatch):
    monkeypatch.setenv(FAULT_PLAN_ENV, json.dumps({
        "sim:baseline/client_00": {"kind": "raise", "times": 1},
    }))
    with ParallelExperimentRunner(per_suite=1, instructions=INSTRUCTIONS,
                                  suites=SUITES, max_workers=2, max_retries=2,
                                  retry_backoff_seconds=0.0,
                                  cache=ResultCache(tmp_path)) as runner:
        runner.run_config("baseline", baseline_config())
    health = persisted_cache_stats(tmp_path)["health"]
    assert health["runs"] == 1
    assert health["jobs"] == 4  # 2 gen + 2 sim jobs went through supervision
    assert health["retries"] >= 1
    assert health["dead_lettered"] == 0


def test_health_and_dead_letter_rendering():
    from repro.experiments.runner import DeadLetter, SweepHealthReport
    health = SweepHealthReport(jobs=5, attempts=9, retries=3, timeouts=1,
                               pool_rebuilds=2, degraded=1,
                               dead_letters=[DeadLetter(
                                   "sim:eves/client_00", 3,
                                   "Traceback ...\nValueError: boom",
                                   fallback_error="RuntimeError: again")])
    text = format_health_report(health)
    assert "retries" in text and "3" in text
    assert "dead-lettered" in text
    # The dict form renders identically (bench reports read back from JSON).
    assert format_health_report(health.to_dict()) == text
    letters = format_dead_letters(health.dead_letters)
    assert "sim:eves/client_00" in letters
    assert "ValueError: boom" in letters        # last line, not the full text
    assert "Traceback" not in letters
    assert "RuntimeError: again" in letters
    persisted = format_persisted_health({"runs": 2, "jobs": 10, "attempts": 20,
                                         "retries": 5, "timeouts": 0,
                                         "pool_rebuilds": 0, "degraded": 0,
                                         "dead_lettered": 0})
    assert "25.0%" in persisted  # retry rate = 5/20


# ------------------------------------------------------------------ CLI layer


def _sweep_argv(cache_dir, *extra):
    return ["sweep", "--cache-dir", str(cache_dir), "--workers", "2",
            "--suites", "Client,Server", "--per-suite", "1",
            "--instructions", str(INSTRUCTIONS), "--configs", "baseline",
            "--smt-configs", "none", *extra]


def test_cli_dead_letter_exit_code_and_resume(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv(FAULT_PLAN_ENV, json.dumps({
        "sim:baseline/client_00": {"kind": "raise", "times": 99,
                                   "scope": "anywhere"},
    }))
    monkeypatch.setenv(MAX_RETRIES_ENV, "0")
    assert main(_sweep_argv(tmp_path)) == EXIT_DEAD_LETTER
    captured = capsys.readouterr()
    assert "dead-lettered" in captured.err
    assert "sim:baseline/client_00" in captured.err
    assert "--resume" in captured.err

    monkeypatch.delenv(FAULT_PLAN_ENV)
    assert main(_sweep_argv(tmp_path, "--resume")) == 0
    captured = capsys.readouterr()
    assert "resume: 1 job(s) already journaled, 1 executed" in captured.out


def test_cli_resume_requires_an_existing_journal(tmp_path):
    with pytest.raises(SystemExit, match="nothing to resume"):
        main(_sweep_argv(tmp_path / "never-created", "--resume"))


def test_cli_interrupt_exits_130(tmp_path, capsys, monkeypatch):
    def interrupted(args):
        raise KeyboardInterrupt
    monkeypatch.setattr("repro.cli._build_runner", interrupted)
    assert main(_sweep_argv(tmp_path)) == EXIT_INTERRUPT
    assert "interrupted" in capsys.readouterr().err


def test_cli_sweep_prints_health_on_recovered_faults(tmp_path, capsys,
                                                     monkeypatch):
    monkeypatch.setenv(FAULT_PLAN_ENV, json.dumps({
        "sim:baseline/client_00": {"kind": "raise", "times": 1},
    }))
    monkeypatch.setenv(MAX_RETRIES_ENV, "2")
    assert main(_sweep_argv(tmp_path)) == 0
    out = capsys.readouterr().out
    assert "sweep health" in out
    # ... and `repro cache stats` aggregates the flushed health ledger.
    assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
    assert "sweep health (all processes)" in capsys.readouterr().out
