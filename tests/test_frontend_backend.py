"""Tests for the branch predictor, BTB and backend building blocks."""

import pytest

from repro.backend.dependence import MemoryDependencePredictor
from repro.backend.ports import ExecutionPorts, PortConfig, PortKind
from repro.backend.resources import BackendSizes, ResourcePool
from repro.backend.store_queue import StoreQueue
from repro.frontend.branch_predictor import BimodalPredictor, BranchPredictor, TagePredictor
from repro.frontend.btb import BranchTargetBuffer


# --------------------------------------------------------------------- bimodal

def test_bimodal_learns_always_taken():
    predictor = BimodalPredictor(entries=64)
    for _ in range(4):
        predictor.update(0x400, True)
    assert predictor.predict(0x400) is True


def test_bimodal_learns_never_taken():
    predictor = BimodalPredictor(entries=64)
    for _ in range(4):
        predictor.update(0x400, False)
    assert predictor.predict(0x400) is False


# ------------------------------------------------------------------------ TAGE

def test_tage_learns_loop_exit_pattern():
    predictor = TagePredictor()
    # A loop of 4 iterations: T T T NT, repeated; history-based tables should
    # beat the 75%-taken bimodal baseline after warm-up.
    pattern = [True, True, True, False]
    warmup_mispredicts = 0
    late_mispredicts = 0
    for round_index in range(200):
        for taken in pattern:
            predicted = predictor.predict(0x800)
            if predicted != taken:
                if round_index < 100:
                    warmup_mispredicts += 1
                else:
                    late_mispredicts += 1
            predictor.update(0x800, taken)
    assert late_mispredicts <= warmup_mispredicts
    assert late_mispredicts < 100  # better than always-taken on the exit


def test_tage_misprediction_rate_tracking():
    predictor = TagePredictor()
    for _ in range(10):
        predictor.predict(0x100)
        predictor.update(0x100, True)
    assert 0.0 <= predictor.misprediction_rate() <= 1.0


def test_branch_predictor_facade_unconditional_always_correct():
    facade = BranchPredictor()
    assert facade.predict_taken(0x100, is_conditional=False) is True
    assert facade.resolve(0x100, False, True, True) is False


def test_branch_predictor_facade_counts_mispredictions():
    facade = BranchPredictor()
    predicted = facade.predict_taken(0x200, is_conditional=True)
    mispredicted = facade.resolve(0x200, True, predicted, not predicted)
    assert mispredicted is True
    assert facade.conditional_mispredictions == 1


# ------------------------------------------------------------------------- BTB

def test_btb_miss_then_hit():
    btb = BranchTargetBuffer(entries=16)
    assert btb.lookup(0x400) is None
    btb.update(0x400, 0x1000)
    assert btb.lookup(0x400) == 0x1000
    assert btb.hits == 1 and btb.misses == 1


# -------------------------------------------------------------------- resources

def test_resource_pool_allocation_and_release():
    pool = ResourcePool("RS", capacity=2)
    assert pool.allocate() and pool.allocate()
    assert not pool.allocate()
    assert pool.allocation_stalls == 1
    pool.release()
    assert pool.allocate()
    assert pool.total_allocations == 3
    assert pool.peak_occupancy == 2


def test_resource_pool_over_release_raises():
    pool = ResourcePool("LB", capacity=1)
    with pytest.raises(ValueError):
        pool.release()


def test_backend_sizes_scaling():
    sizes = BackendSizes()
    scaled = sizes.scaled(2.0)
    assert scaled.rob == sizes.rob * 2
    assert scaled.rs == sizes.rs * 2
    with pytest.raises(ValueError):
        sizes.scaled(0)


# ------------------------------------------------------------------------ ports

def test_ports_enforce_per_kind_limits():
    ports = ExecutionPorts(PortConfig(issue_width=6, alu=2, load=1, store_address=1, store_data=1))
    ports.new_cycle()
    assert ports.issue(PortKind.LOAD)
    assert not ports.issue(PortKind.LOAD)
    assert ports.issue(PortKind.ALU) and ports.issue(PortKind.ALU)
    assert not ports.issue(PortKind.ALU)


def test_ports_enforce_issue_width():
    ports = ExecutionPorts(PortConfig(issue_width=2, alu=5, load=3))
    ports.new_cycle()
    assert ports.issue(PortKind.ALU)
    assert ports.issue(PortKind.ALU)
    assert not ports.issue(PortKind.LOAD)


def test_ports_track_load_busy_cycles():
    ports = ExecutionPorts(PortConfig())
    ports.new_cycle()
    ports.issue(PortKind.LOAD)
    ports.new_cycle()          # closes the previous cycle
    ports.new_cycle()
    assert ports.load_port_busy_cycles == 1
    assert ports.load_port_uses == 1


# ------------------------------------------------------- dependence / store queue

def test_dependence_predictor_trains_and_decays():
    predictor = MemoryDependencePredictor()
    assert not predictor.should_wait_for_stores(0x700)
    predictor.train_violation(0x700)
    assert predictor.should_wait_for_stores(0x700)
    for _ in range(10):
        predictor.observe_safe_execution(0x700)
    assert not predictor.should_wait_for_stores(0x700)


def test_store_queue_forwarding_candidate_and_ordering():
    queue = StoreQueue()
    older = queue.insert(seq=10, pc=0x100)
    younger = queue.insert(seq=20, pc=0x104)
    older.address = 0x8000
    older.line_address = 0x8000
    older.address_ready = True
    older.data_ready = True
    candidate = queue.forwarding_candidate(load_seq=15, address=0x8004)
    assert candidate is older
    assert queue.forwarding_candidate(load_seq=5, address=0x8000) is None
    assert queue.has_unresolved_older_store(load_seq=25) is True
    younger.address_ready = True
    assert queue.has_unresolved_older_store(load_seq=25) is False


def test_store_queue_squash_and_remove():
    queue = StoreQueue()
    queue.insert(seq=1, pc=0x1)
    queue.insert(seq=2, pc=0x2)
    queue.insert(seq=3, pc=0x3)
    queue.squash_younger_than(2)
    assert [s.seq for s in queue.records()] == [1, 2]
    queue.remove(1)
    assert [s.seq for s in queue.records()] == [2]
    queue.clear()
    assert len(queue) == 0
