"""Golden-stats regression tests: committed snapshots pin the timing model.

The on-disk caches key every entry with ``SCHEMA_VERSION``, so a timing-model
change that forgets the schema bump would silently serve stale results to
warm runs.  These tests make such drift fail loudly instead: small JSON
snapshots of each golden workload's trace signature, Load Inspector summary
and baseline/constable simulation summaries are committed under
``tests/golden/``, and every run asserts the current code reproduces them
bit-for-bit (all values pass through a JSON round-trip on both sides, so the
comparison is exact).

When a change *intentionally* alters these numbers, refresh the fixtures and
bump :data:`repro.experiments.cache.SCHEMA_VERSION` in the same commit:

    PYTHONPATH=src python tests/test_golden_stats.py --refresh

The diff of ``tests/golden/*.json`` then documents exactly what moved.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict

import pytest

from repro.analysis.load_inspector import inspect_trace
from repro.experiments.configs import baseline_config, constable_config
from repro.pipeline import simulate_trace
from repro.workloads.generator import generate_trace, trace_signature
from repro.workloads.suites import get_workload_spec

#: Where the committed snapshots live.
GOLDEN_DIR = Path(__file__).parent / "golden"

#: Seeded workloads pinned by the fixtures: one stable-load-rich suite, one
#: SPEC-like suite, one snoop-heavy suite.
GOLDEN_WORKLOADS = ("client_00", "ispec_00", "server_00")

#: Trace length of the golden runs (short: the three workloads simulate twice).
GOLDEN_INSTRUCTIONS = 1200


def compute_snapshot(workload: str) -> Dict[str, object]:
    """Regenerate every pinned statistic for ``workload`` from scratch."""
    spec = get_workload_spec(workload)
    trace = generate_trace(spec, num_instructions=GOLDEN_INSTRUCTIONS)
    report = inspect_trace(trace)
    baseline = simulate_trace(trace, baseline_config(), name="baseline")
    constable = simulate_trace(trace, constable_config(), name="constable")
    snapshot = {
        "workload": workload,
        "suite": spec.suite,
        "instructions": GOLDEN_INSTRUCTIONS,
        "trace_signature": trace_signature(trace),
        "report_summary": report.summary(),
        "baseline_summary": baseline.summary(),
        "constable_summary": constable.summary(),
    }
    # Round-trip through JSON so committed and recomputed values compare in
    # the exact same representation.
    return json.loads(json.dumps(snapshot))


def _fixture_path(workload: str) -> Path:
    return GOLDEN_DIR / f"{workload}.json"


@pytest.mark.parametrize("workload", GOLDEN_WORKLOADS)
def test_golden_stats_reproduce(workload):
    path = _fixture_path(workload)
    assert path.is_file(), (
        f"missing golden fixture {path}; generate it with "
        f"`PYTHONPATH=src python tests/test_golden_stats.py --refresh`")
    expected = json.loads(path.read_text(encoding="utf-8"))
    actual = compute_snapshot(workload)
    if actual != expected:
        drifted = sorted(key for key in set(expected) | set(actual)
                         if expected.get(key) != actual.get(key))
        raise AssertionError(
            f"golden stats drifted for {workload} in {drifted}: the timing "
            f"model or workload generation changed.  If intentional, refresh "
            f"tests/golden/ AND bump repro.experiments.cache.SCHEMA_VERSION "
            f"so stale cache entries cannot be served.\n"
            + "\n".join(f"  {key}: expected {expected.get(key)!r}\n"
                        f"  {' ' * len(key)}  actual   {actual.get(key)!r}"
                        for key in drifted))


def refresh() -> None:
    """Rewrite every golden fixture from the current code."""
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for workload in GOLDEN_WORKLOADS:
        snapshot = compute_snapshot(workload)
        path = _fixture_path(workload)
        path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
        print(f"wrote {path}")


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--refresh", action="store_true",
                        help="rewrite tests/golden/*.json from the current code")
    if parser.parse_args().refresh:
        refresh()
    else:
        parser.error("nothing to do; pass --refresh to rewrite the fixtures")
