"""Unit tests for micro-op, addressing mode and operand modelling."""

import pytest

from repro.isa.instruction import (
    AddressingMode,
    DynamicInstruction,
    MemOperand,
    OpClass,
    SnoopEvent,
    StaticInstruction,
    is_memory_op,
)
from repro.isa.registers import RBP, RSP


def test_is_memory_op():
    assert is_memory_op(OpClass.LOAD)
    assert is_memory_op(OpClass.STORE)
    assert not is_memory_op(OpClass.ALU)
    assert not is_memory_op(OpClass.BRANCH)


def test_mem_operand_pc_relative_classification():
    operand = MemOperand(base=None, index=None, disp=0x1000)
    assert operand.addressing_mode() is AddressingMode.PC_RELATIVE
    assert operand.address_registers() == ()


def test_mem_operand_stack_relative_classification():
    for register in (RSP, RBP):
        operand = MemOperand(base=register, disp=-8)
        assert operand.addressing_mode() is AddressingMode.STACK_RELATIVE


def test_mem_operand_register_relative_classification():
    operand = MemOperand(base=3, index=2, scale=8)
    assert operand.addressing_mode() is AddressingMode.REG_RELATIVE
    assert set(operand.address_registers()) == {3, 2}


def test_mem_operand_mixed_stack_and_general_register_is_register_relative():
    operand = MemOperand(base=RSP, index=1, scale=8)
    assert operand.addressing_mode() is AddressingMode.REG_RELATIVE


def test_mem_operand_rejects_bad_scale():
    with pytest.raises(ValueError):
        MemOperand(base=0, scale=3)


def test_static_instruction_requires_mem_operand_for_loads():
    with pytest.raises(ValueError):
        StaticInstruction(pc=0x100, opclass=OpClass.LOAD, dest=1)


def test_static_instruction_requires_target_for_branches():
    with pytest.raises(ValueError):
        StaticInstruction(pc=0x100, opclass=OpClass.BRANCH, srcs=(1,), cond="nz")


def test_static_instruction_source_registers_include_address_registers():
    inst = StaticInstruction(pc=0x100, opclass=OpClass.LOAD, dest=1,
                             mem=MemOperand(base=5, index=6, scale=8, disp=16))
    assert set(inst.source_registers()) == {5, 6}


def test_static_instruction_addressing_mode_none_for_alu():
    inst = StaticInstruction(pc=0x104, opclass=OpClass.ALU, dest=0, srcs=(1, 2))
    assert inst.addressing_mode() is AddressingMode.NONE


def test_dynamic_instruction_properties():
    static = StaticInstruction(pc=0x200, opclass=OpClass.LOAD, dest=2,
                               mem=MemOperand(base=RBP, disp=-16))
    dyn = DynamicInstruction(seq=5, static=static, address=0x7000, load_value=99,
                             next_pc=0x204)
    assert dyn.pc == 0x200
    assert dyn.is_load
    assert not dyn.is_store
    assert not dyn.is_branch
    assert dyn.load_value == 99


def test_snoop_event_fields():
    snoop = SnoopEvent(after_seq=12, address=0x5000_0040)
    assert snoop.after_seq == 12
    assert snoop.address == 0x5000_0040
