"""Unit tests for the program builder and static program container."""

import pytest

from repro.isa.instruction import OpClass
from repro.isa.program import INSTRUCTION_SIZE, Program, ProgramBuilder


def _simple_loop_program():
    builder = ProgramBuilder(base_pc=0x1000)
    builder.movi(0, 5)
    top = builder.here("top")
    builder.addi(0, 0, -1)
    builder.jnz(0, top)
    return builder.build()


def test_builder_lays_out_consecutive_pcs():
    program = _simple_loop_program()
    pcs = [inst.pc for inst in program.instructions()]
    assert pcs == [0x1000, 0x1004, 0x1008]


def test_builder_resolves_labels_to_pcs():
    program = _simple_loop_program()
    branch = program.instructions()[-1]
    assert branch.opclass is OpClass.BRANCH
    assert branch.branch_target == 0x1004


def test_builder_rejects_unplaced_labels():
    builder = ProgramBuilder()
    dangling = builder.label("never_placed")
    builder.jmp(dangling)
    with pytest.raises(ValueError):
        builder.build()


def test_program_fetch_and_contains():
    program = _simple_loop_program()
    assert 0x1000 in program
    assert 0x2000 not in program
    assert program.fetch(0x1008).opclass is OpClass.BRANCH
    assert program.next_pc(0x1000) == 0x1000 + INSTRUCTION_SIZE


def test_program_rejects_empty_instruction_list():
    with pytest.raises(ValueError):
        Program([], entry_pc=0)


def test_program_loads_and_stores_listing():
    builder = ProgramBuilder()
    builder.load(1, base=None, disp=0x100)
    builder.store(1, base=None, disp=0x108)
    builder.nop()
    program = builder.build()
    assert len(program.loads()) == 1
    assert len(program.stores()) == 1


def test_builder_memory_helpers_set_operands():
    builder = ProgramBuilder()
    load = builder.load(2, base=3, index=4, scale=8, disp=0x20)
    store = builder.store_global(2, 0x9000)
    assert load.mem.base == 3 and load.mem.index == 4 and load.mem.scale == 8
    assert store.mem.base is None and store.mem.disp == 0x9000


def test_builder_entry_label():
    builder = ProgramBuilder(base_pc=0x4000)
    builder.nop()
    entry = builder.here("entry")
    builder.nop()
    program = builder.build(entry=entry)
    assert program.entry_pc == 0x4004
