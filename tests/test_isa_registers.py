"""Unit tests for the architectural register model."""

import pytest

from repro.isa.registers import (
    APX_REGISTER_COUNT,
    ARCH_REGISTER_COUNT,
    RBP,
    RSP,
    STACK_REGISTERS,
    RegisterFile,
    register_name,
)


def test_register_counts():
    assert ARCH_REGISTER_COUNT == 16
    assert APX_REGISTER_COUNT == 32


def test_stack_registers_are_rsp_and_rbp():
    assert RSP in STACK_REGISTERS
    assert RBP in STACK_REGISTERS
    assert len(STACK_REGISTERS) == 2
    assert register_name(RSP) == "rsp"
    assert register_name(RBP) == "rbp"


def test_register_name_for_apx_registers():
    assert register_name(16) == "r16"
    assert register_name(31) == "r31"


def test_register_name_rejects_negative_index():
    with pytest.raises(ValueError):
        register_name(-1)


def test_register_file_read_write_roundtrip():
    regs = RegisterFile()
    regs.write(3, 0xDEADBEEF)
    assert regs.read(3) == 0xDEADBEEF
    assert regs.read(0) == 0


def test_register_file_wraps_to_64_bits():
    regs = RegisterFile()
    regs.write(1, 1 << 70)
    assert regs.read(1) == ((1 << 70) & ((1 << 64) - 1))


def test_register_file_snapshot_roundtrip():
    regs = RegisterFile(count=4)
    regs.write(2, 42)
    snapshot = regs.snapshot()
    regs.write(2, 99)
    regs.load_snapshot(snapshot)
    assert regs.read(2) == 42


def test_register_file_snapshot_length_mismatch():
    regs = RegisterFile(count=4)
    with pytest.raises(ValueError):
        regs.load_snapshot([1, 2, 3])


def test_register_file_rejects_bad_sizes():
    with pytest.raises(ValueError):
        RegisterFile(count=0)
    with pytest.raises(ValueError):
        RegisterFile(count=2, initial=[1])


def test_register_file_len_and_count():
    regs = RegisterFile(count=32)
    assert len(regs) == 32
    assert regs.count == 32
