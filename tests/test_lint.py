"""In-process mirror of ``repro lint`` plus per-rule fixture proofs.

Three layers, mirroring the ``tests/test_docstrings.py`` pattern so the
tier-1 suite enforces a lint-clean tree without any external tooling:

* **The mirror** — :func:`test_repository_tree_is_lint_clean` runs every
  registered rule over the real repository, exactly what CI's
  ``repro lint --json`` job does.
* **Liveness proofs** — for each rule a seeded-bad fixture from
  ``tests/lint_fixtures/`` is materialized into a repo-shaped ``tmp_path``
  tree at the path the rule guards; its ``# expect[RLxxx]`` markers must
  reproduce as findings *exactly* (rule id, file, line), and the good twin
  must come back clean.  A rule that silently stopped matching would fail
  here, not in review.
* **Framework contracts** — the ignore-comment allowlist suppresses, typoed
  rule names in an ignore comment are an error (never silence), malformed
  directives and syntax errors report loudly, and the schema-manifest gate
  demonstrably fires against an in-memory mutated manifest.
"""

from __future__ import annotations

import json
import re
import shutil
from pathlib import Path

import pytest

from repro.analysis.lint import (
    MANIFEST_REL,
    META_RULE_ID,
    all_rules,
    compare_manifest,
    extract_manifest,
    load_context,
    load_manifest,
    refresh_manifest,
    run_lint,
)
from repro.cli import main
from repro.experiments.cache import ResultCache
from repro.experiments.configs import baseline_config
from repro.workloads.suites import all_workload_specs

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"

#: Where each rule's fixture lands inside the synthetic tree: a path the
#: rule actually guards, so the fixture exercises the real scope logic.
PLACEMENT = {
    "RL001": "src/repro/pipeline/generated.py",
    "RL002": "src/repro/experiments/cache.py",
    "RL003": "src/repro/pipeline/stats.py",
    "RL004": "src/repro/experiments/knobs.py",
    "RL005": "src/repro/pipeline/cpu.py",
    "RL006": "src/repro/experiments/runner.py",
}

_EXPECT_RE = re.compile(r"#\s*expect\[(RL\d{3})\]")

#: The synthetic tree's env-var registry: documents exactly the knob the
#: RL004 good twin reads, so the bad twin's extra read is the only diff.
_ENV_DOC = """# Environment variables

| Variable | Consumer |
| --- | --- |
| `REPRO_FIXTURE_KNOB` | tests/lint_fixtures |
"""

#: Version-source stubs for the synthetic RL003 tree (same constants the
#: real modules define, so the manifest records 1/4 like the committed one).
_CACHE_STUB = '"""Stub version source."""\n\nSCHEMA_VERSION = 1\n'
_BENCH_STUB = '"""Stub version source."""\n\nBENCH_SCHEMA_VERSION = 4\n'


def _write(root: Path, rel: str, text: str) -> Path:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text, encoding="utf-8")
    return path


def _expected_findings(rule_id: str):
    """``(rule, path, line)`` triples from the bad fixture's markers."""
    text = (FIXTURES / f"{rule_id}_bad.py").read_text(encoding="utf-8")
    rel = PLACEMENT[rule_id]
    triples = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in _EXPECT_RE.finditer(line):
            triples.append((match.group(1), rel, lineno))
    assert triples, f"fixture {rule_id}_bad.py carries no expect markers"
    return sorted(triples)


def _materialize(root: Path, rule_id: str, variant: str) -> Path:
    """Build a minimal repo-shaped tree around one fixture file."""
    rel = PLACEMENT[rule_id]
    if rule_id == "RL004":
        _write(root, "docs/ENVIRONMENT.md", _ENV_DOC)
    if rule_id == "RL003":
        # The manifest is generated from the good twin (plus version stubs),
        # then the requested variant is swapped in; the bad twin therefore
        # drifts from a manifest recording unchanged schema versions.
        _write(root, "src/repro/experiments/cache.py", _CACHE_STUB)
        _write(root, "src/repro/experiments/bench.py", _BENCH_STUB)
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(FIXTURES / f"{rule_id}_good.py", target)
        refresh_manifest(root)
    target = root / rel
    target.parent.mkdir(parents=True, exist_ok=True)
    shutil.copyfile(FIXTURES / f"{rule_id}_{variant}.py", target)
    return root


# --------------------------------------------------------------- the mirror


def test_repository_tree_is_lint_clean():
    """The in-process twin of CI's ``repro lint`` gate."""
    report = run_lint(REPO_ROOT)
    assert report.ok, "repro lint found violations:\n" + report.render()
    assert report.files_scanned >= 50, \
        f"suspiciously small scan ({report.files_scanned} files); did " \
        f"SCAN_ROOTS rot?"
    assert report.rules == sorted(all_rules())


def test_committed_manifest_matches_tree():
    """``schema_manifest.json`` is in sync and byte-stable under refresh."""
    committed = (REPO_ROOT / MANIFEST_REL).read_text(encoding="utf-8")
    regenerated = json.dumps(extract_manifest(load_context(REPO_ROOT)),
                             indent=2, sort_keys=True) + "\n"
    assert committed == regenerated, \
        "schema manifest out of sync; run `repro lint --refresh-manifest`"


# ------------------------------------------------------- per-rule liveness


@pytest.mark.parametrize("rule_id", sorted(PLACEMENT))
def test_bad_fixture_yields_exactly_the_expected_findings(tmp_path, rule_id):
    """Each seeded-bad snippet reproduces its markers: rule id, file, line."""
    _materialize(tmp_path, rule_id, "bad")
    report = run_lint(tmp_path, rule_ids=[rule_id])
    got = sorted((f.rule, f.path, f.line) for f in report.findings)
    assert got == _expected_findings(rule_id), "\n" + report.render()


@pytest.mark.parametrize("rule_id", sorted(PLACEMENT))
def test_good_fixture_is_clean(tmp_path, rule_id):
    """Each good twin passes the same rule untouched."""
    _materialize(tmp_path, rule_id, "good")
    report = run_lint(tmp_path, rule_ids=[rule_id])
    assert report.ok, "\n" + report.render()


# ------------------------------------------------- allowlist + meta checks


def test_ignore_comment_suppresses_a_known_rule(tmp_path):
    _write(tmp_path, "src/repro/pipeline/suppressed.py",
           "import time\n\n\ndef now():\n"
           "    return time.time()  # repro-lint: ignore[RL001]\n")
    report = run_lint(tmp_path, rule_ids=["RL001"])
    assert report.ok, "\n" + report.render()


def test_unknown_rule_in_ignore_comment_is_an_error_not_silence(tmp_path):
    """Satellite 4: a typoed allowlist must fail loudly AND not suppress."""
    _write(tmp_path, "src/repro/pipeline/typoed.py",
           "import time\n\n\ndef now():\n"
           "    return time.time()  # repro-lint: ignore[RL999]\n")
    report = run_lint(tmp_path, rule_ids=["RL001"])
    triples = sorted((f.rule, f.line) for f in report.findings)
    assert triples == [(META_RULE_ID, 5), ("RL001", 5)], "\n" + report.render()
    meta = next(f for f in report.findings if f.rule == META_RULE_ID)
    assert "unknown rule 'RL999'" in meta.message


def test_meta_checks_run_regardless_of_rule_selection(tmp_path):
    _write(tmp_path, "src/repro/pipeline/typoed.py",
           "VALUE = 1  # repro-lint: ignore[RL999]\n")
    report = run_lint(tmp_path, rule_ids=["RL006"])
    assert [f.rule for f in report.findings] == [META_RULE_ID]


def test_meta_findings_are_not_suppressible(tmp_path):
    """An ignore comment cannot vouch for its own spelling."""
    _write(tmp_path, "src/repro/pipeline/selfref.py",
           "VALUE = 1  # repro-lint: ignore[RL000, RL999]\n")
    report = run_lint(tmp_path, rule_ids=["RL006"])
    assert [f.rule for f in report.findings] == [META_RULE_ID]
    assert "RL999" in report.findings[0].message


def test_malformed_directive_and_empty_ignore_list_error(tmp_path):
    _write(tmp_path, "src/repro/pipeline/directives.py",
           "A = 1  # repro-lint: disable-everything\n"
           "B = 2  # repro-lint: ignore[]\n")
    report = run_lint(tmp_path, rule_ids=["RL006"])
    messages = {f.line: f.message for f in report.findings}
    assert all(f.rule == META_RULE_ID for f in report.findings)
    assert "malformed" in messages[1]
    assert "empty ignore list" in messages[2]


def test_syntax_error_in_scanned_file_fails_loudly(tmp_path):
    _write(tmp_path, "src/repro/pipeline/broken.py", "def broken(:\n")
    report = run_lint(tmp_path, rule_ids=["RL006"])
    assert [(f.rule, f.path, f.line) for f in report.findings] == \
        [(META_RULE_ID, "src/repro/pipeline/broken.py", 1)]
    assert "does not parse" in report.findings[0].message


def test_run_lint_rejects_unknown_rule_selection(tmp_path):
    with pytest.raises(ValueError, match="RL999"):
        run_lint(tmp_path, rule_ids=["RL999"])


# ------------------------------------------------------- RL003 gate depth


def test_schema_gate_fires_on_in_memory_key_mutation():
    """Acceptance criterion: mutate a to_dict key set, the gate reports drift."""
    ctx = load_context(REPO_ROOT)
    current = extract_manifest(ctx)
    committed = json.loads(json.dumps(load_manifest(REPO_ROOT)))
    assert committed == current  # precondition: tree is in sync
    class_key, keys = next(
        (name, keys) for name, keys in committed["to_dict_keys"].items() if keys)
    committed["to_dict_keys"][class_key] = keys[:-1]
    findings = compare_manifest(ctx, current, committed, "RL003")
    assert len(findings) == 1
    finding = findings[0]
    assert finding.rule == "RL003"
    assert finding.path == class_key.partition("::")[0]
    assert "drifted" in finding.message
    assert f"added {[keys[-1]]}" in finding.message


def test_schema_gate_demands_refresh_when_versions_bumped_in_memory():
    ctx = load_context(REPO_ROOT)
    current = extract_manifest(ctx)
    committed = json.loads(json.dumps(load_manifest(REPO_ROOT)))
    committed["schema_version"] = committed["schema_version"] - 1
    findings = compare_manifest(ctx, current, committed, "RL003")
    assert len(findings) == 1
    assert findings[0].path == MANIFEST_REL
    assert "--refresh-manifest" in findings[0].message


def test_schema_version_bump_unlocks_drift_but_requires_refresh(tmp_path):
    """Full RL003 lifecycle in a synthetic tree: drift -> bump -> refresh."""
    _materialize(tmp_path, "RL003", "bad")
    drifting = run_lint(tmp_path, rule_ids=["RL003"])
    assert not drifting.ok and "drifted" in drifting.findings[0].message

    # A deliberate schema bump in the same tree unlocks the drift, but the
    # stale manifest must now be regenerated...
    _write(tmp_path, "src/repro/experiments/cache.py",
           _CACHE_STUB.replace("SCHEMA_VERSION = 1", "SCHEMA_VERSION = 2"))
    bumped = run_lint(tmp_path, rule_ids=["RL003"])
    assert [f.path for f in bumped.findings] == [MANIFEST_REL]
    assert "--refresh-manifest" in bumped.findings[0].message

    # ...after which the tree is clean again.
    refresh_manifest(tmp_path)
    assert run_lint(tmp_path, rule_ids=["RL003"]).ok


def _materialize_warehouse(root: Path, variant: str) -> Path:
    """Synthetic tree for the warehouse half of the RL003 gate.

    The good twin lands at ``src/repro/experiments/warehouse.py`` — the path
    both ``SERIALIZED_MODULES`` and the ``warehouse_schema_version`` entry of
    ``VERSION_SOURCES`` guard — the manifest is refreshed from it, and then
    the requested variant is swapped in.
    """
    _write(root, "src/repro/experiments/cache.py", _CACHE_STUB)
    _write(root, "src/repro/experiments/bench.py", _BENCH_STUB)
    target = root / "src/repro/experiments/warehouse.py"
    target.parent.mkdir(parents=True, exist_ok=True)
    shutil.copyfile(FIXTURES / "RL003_warehouse_good.py", target)
    refresh_manifest(root)
    shutil.copyfile(FIXTURES / f"RL003_warehouse_{variant}.py", target)
    return root


def test_warehouse_row_drift_without_version_bump_fails_lint(tmp_path):
    """Satellite: a WarehouseRow key added sans WAREHOUSE_SCHEMA_VERSION bump."""
    _materialize_warehouse(tmp_path, "bad")
    report = run_lint(tmp_path, rule_ids=["RL003"])
    assert not report.ok, "bad warehouse twin came back clean"
    [finding] = report.findings
    assert finding.path == "src/repro/experiments/warehouse.py"
    assert "WarehouseRow" in finding.message
    assert "drifted" in finding.message and "added ['mpki']" in finding.message


def test_warehouse_good_twin_is_clean(tmp_path):
    _materialize_warehouse(tmp_path, "good")
    report = run_lint(tmp_path, rule_ids=["RL003"])
    assert report.ok, "\n" + report.render()


def test_warehouse_version_bump_unlocks_drift_but_requires_refresh(tmp_path):
    """A deliberate WAREHOUSE_SCHEMA_VERSION bump follows the RL003 lifecycle."""
    _materialize_warehouse(tmp_path, "bad")
    target = tmp_path / "src/repro/experiments/warehouse.py"
    target.write_text(
        target.read_text(encoding="utf-8").replace(
            "WAREHOUSE_SCHEMA_VERSION = 1", "WAREHOUSE_SCHEMA_VERSION = 2"),
        encoding="utf-8")
    bumped = run_lint(tmp_path, rule_ids=["RL003"])
    assert [f.path for f in bumped.findings] == [MANIFEST_REL]
    assert "--refresh-manifest" in bumped.findings[0].message
    refresh_manifest(tmp_path)
    assert run_lint(tmp_path, rule_ids=["RL003"]).ok


def test_committed_manifest_pins_the_real_warehouse_row(tmp_path):
    """The committed manifest records the live WarehouseRow column set."""
    manifest = load_manifest(REPO_ROOT)
    assert manifest is not None
    assert manifest["warehouse_schema_version"] == 1
    keys = manifest["to_dict_keys"][
        "src/repro/experiments/warehouse.py::WarehouseRow"]
    from repro.experiments.warehouse import ROW_COLUMNS
    assert keys == sorted(ROW_COLUMNS)


def test_env_registry_flags_documented_but_unread_rows(tmp_path):
    """RL004's other direction: a registry row nothing reads is doc rot."""
    _materialize(tmp_path, "RL004", "good")
    docs = tmp_path / "docs/ENVIRONMENT.md"
    docs.write_text(docs.read_text(encoding="utf-8")
                    + "| `REPRO_GHOST_KNOB` | nobody |\n", encoding="utf-8")
    report = run_lint(tmp_path, rule_ids=["RL004"])
    assert len(report.findings) == 1
    assert report.findings[0].path == "docs/ENVIRONMENT.md"
    assert "REPRO_GHOST_KNOB" in report.findings[0].message


# ------------------------------------------------ RL002's runtime twin


def test_cache_fingerprint_ignores_engine_and_runtime_env(tmp_path, monkeypatch):
    """Satellite 2: the dynamic half of RL002's static purity guarantee.

    The cache key of a fixed (config, workload, trace) job must be
    byte-identical whichever engine is selected and however the runtime
    session knobs are set — otherwise hosts with different environments
    would silently stop sharing warm entries.
    """
    config = baseline_config()
    spec = all_workload_specs()[0]

    def key() -> str:
        cache = ResultCache(tmp_path / "cache")
        return cache.key_for(config, spec, instructions=2000, num_registers=16)

    monkeypatch.setenv("REPRO_CORE_ENGINE", "cycle")
    monkeypatch.delenv("REPRO_BENCH_REPS", raising=False)
    monkeypatch.delenv("REPRO_ORCHESTRATE", raising=False)
    monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
    monkeypatch.delenv("REPRO_MAX_RETRIES", raising=False)
    monkeypatch.delenv("REPRO_JOB_TIMEOUT", raising=False)
    reference = key()

    monkeypatch.setenv("REPRO_CORE_ENGINE", "event")
    monkeypatch.setenv("REPRO_BENCH_REPS", "9")
    monkeypatch.setenv("REPRO_ORCHESTRATE", "1")
    monkeypatch.setenv("REPRO_FAULT_PLAN", '{"sim:*": {"kind": "raise"}}')
    monkeypatch.setenv("REPRO_MAX_RETRIES", "7")
    monkeypatch.setenv("REPRO_JOB_TIMEOUT", "1.5")
    assert key() == reference


# --------------------------------------------------------------- CLI layer


def test_cli_lint_is_clean_on_the_repository(capsys):
    assert main(["lint", "--root", str(REPO_ROOT)]) == 0
    assert "repro lint: clean" in capsys.readouterr().out


def test_cli_lint_json_payload(capsys):
    assert main(["lint", "--json", "--root", str(REPO_ROOT)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert payload["findings"] == []
    assert payload["rules"] == sorted(all_rules())
    assert payload["files_scanned"] >= 50


def test_cli_lint_findings_exit_code_and_rule_filter(tmp_path, capsys):
    _materialize(tmp_path, "RL006", "bad")
    assert main(["lint", "--root", str(tmp_path), "--rule", "RL006"]) == 1
    out = capsys.readouterr().out
    assert "RL006" in out and "finding(s)" in out
    # Selecting a different rule skips the RL006 findings entirely.
    assert main(["lint", "--root", str(tmp_path), "--rule", "RL001"]) == 0


def test_cli_lint_unknown_rule_is_a_usage_error(tmp_path, capsys):
    assert main(["lint", "--root", str(tmp_path), "--rule", "RL999"]) == 2
    assert "unknown lint rules" in capsys.readouterr().err


def test_cli_lint_refresh_manifest_is_idempotent(tmp_path, capsys):
    _materialize(tmp_path, "RL003", "good")
    manifest = tmp_path / MANIFEST_REL
    before = manifest.read_bytes()
    assert main(["lint", "--root", str(tmp_path), "--refresh-manifest"]) == 0
    assert "wrote" in capsys.readouterr().out
    assert manifest.read_bytes() == before
