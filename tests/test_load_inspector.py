"""Tests for the Load Inspector (global-stable load analysis)."""

from repro.analysis.load_inspector import (
    DISTANCE_BUCKETS,
    LoadInspector,
    bucket_for_distance,
    inspect_trace,
)
from repro.isa.instruction import DynamicInstruction, MemOperand, OpClass, StaticInstruction
from repro.workloads.trace import Trace


def _make_load(pc, seq, address, value):
    static = StaticInstruction(pc=pc, opclass=OpClass.LOAD, dest=1,
                               mem=MemOperand(base=None, disp=address))
    return DynamicInstruction(seq=seq, static=static, address=address, load_value=value,
                              next_pc=pc + 4)


def _make_alu(pc, seq):
    static = StaticInstruction(pc=pc, opclass=OpClass.ALU, dest=0, srcs=(1,))
    return DynamicInstruction(seq=seq, static=static, next_pc=pc + 4)


def test_bucket_boundaries_match_figure3():
    assert bucket_for_distance(0) == "[0-50)"
    assert bucket_for_distance(49) == "[0-50)"
    assert bucket_for_distance(50) == "[50-100)"
    assert bucket_for_distance(249) == "[100-250)"
    assert bucket_for_distance(250) == "250+"
    assert bucket_for_distance(10_000) == "250+"
    assert len(DISTANCE_BUCKETS) == 4


def test_stable_load_detection_same_address_same_value():
    inspector = LoadInspector()
    for seq in range(5):
        inspector.observe(_make_load(0x100, seq * 10, 0x8000, 42))
    report = inspector.report()
    assert report.global_stable_pcs() == {0x100}
    assert report.global_stable_dynamic_fraction() == 1.0


def test_value_change_breaks_stability():
    inspector = LoadInspector()
    inspector.observe(_make_load(0x100, 0, 0x8000, 42))
    inspector.observe(_make_load(0x100, 10, 0x8000, 43))
    report = inspector.report()
    assert report.global_stable_pcs() == set()


def test_address_change_breaks_stability():
    inspector = LoadInspector()
    inspector.observe(_make_load(0x100, 0, 0x8000, 42))
    inspector.observe(_make_load(0x100, 10, 0x8008, 42))
    assert inspector.report().global_stable_pcs() == set()


def test_single_occurrence_is_not_global_stable():
    inspector = LoadInspector()
    inspector.observe(_make_load(0x100, 0, 0x8000, 42))
    assert inspector.report().global_stable_pcs() == set()


def test_distance_distribution_buckets():
    inspector = LoadInspector()
    inspector.observe(_make_load(0x100, 0, 0x8000, 1))
    inspector.observe(_make_load(0x100, 10, 0x8000, 1))     # distance 10
    inspector.observe(_make_load(0x100, 400, 0x8000, 1))    # distance 390
    report = inspector.report()
    distribution = report.distance_distribution()
    assert abs(distribution["[0-50)"] - 0.5) < 1e-9
    assert abs(distribution["250+"] - 0.5) < 1e-9


def test_mixed_instructions_counted_in_fraction():
    inspector = LoadInspector()
    for seq in range(4):
        inspector.observe(_make_alu(0x200, seq))
    for seq in range(4, 8):
        inspector.observe(_make_load(0x100, seq, 0x8000, 7))
    report = inspector.report()
    assert report.total_instructions == 8
    assert report.total_dynamic_loads() == 4
    assert report.dynamic_load_fraction() == 0.5


def test_inspect_trace_on_generated_workload(tiny_trace):
    report = inspect_trace(tiny_trace)
    assert report.total_dynamic_loads() == len(tiny_trace.loads())
    assert 0.0 <= report.global_stable_dynamic_fraction() <= 1.0
    modes = report.addressing_mode_breakdown()
    assert abs(sum(modes.values()) - 1.0) < 1e-6 or sum(modes.values()) == 0.0


def test_report_summary_keys(tiny_trace):
    summary = inspect_trace(tiny_trace).summary()
    for key in ("total_instructions", "total_dynamic_loads", "static_loads",
                "global_stable_static_loads", "global_stable_dynamic_fraction"):
        assert key in summary


def test_distance_distribution_by_mode_has_all_modes(tiny_trace):
    by_mode = inspect_trace(tiny_trace).distance_distribution_by_mode()
    assert set(by_mode) == {"pc_relative", "stack", "register"}
    for buckets in by_mode.values():
        assert set(buckets) == {label for label, _, _ in DISTANCE_BUCKETS}
