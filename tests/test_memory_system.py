"""Tests for caches, prefetchers, DRAM, TLB, the hierarchy and the directory."""

import pytest

from repro.memory import (
    CacheConfig,
    Directory,
    DramConfig,
    DramModel,
    MemoryHierarchy,
    MemoryHierarchyConfig,
    SetAssociativeCache,
    StridePrefetcher,
    StreamPrefetcher,
    Tlb,
    TlbConfig,
)


# ------------------------------------------------------------------------ cache

def test_cache_config_rejects_bad_geometry():
    with pytest.raises(ValueError):
        CacheConfig("bad", size_bytes=1000, ways=3, line_size=64)
    with pytest.raises(ValueError):
        CacheConfig("bad", size_bytes=0, ways=1)


def test_cache_miss_then_hit_after_fill():
    cache = SetAssociativeCache(CacheConfig("L1", 4096, 4))
    assert cache.access(0x1000) is False
    cache.fill(0x1000)
    assert cache.access(0x1000) is True
    assert cache.stats.hits == 1 and cache.stats.misses == 1


def test_cache_lru_eviction_order():
    cache = SetAssociativeCache(CacheConfig("L1", 2 * 64, 2, line_size=64))
    # Two ways per set; three lines mapping to the same set.
    lines = [0x0, 0x80, 0x100]
    cache.fill(lines[0])
    cache.fill(lines[1])
    evicted = cache.fill(lines[2])
    assert evicted == lines[0]
    assert cache.probe(lines[1]) and cache.probe(lines[2])
    assert not cache.probe(lines[0])


def test_cache_invalidate():
    cache = SetAssociativeCache(CacheConfig("L1", 4096, 4))
    cache.fill(0x2000)
    assert cache.invalidate(0x2000) is True
    assert cache.invalidate(0x2000) is False
    assert cache.probe(0x2000) is False


def test_cache_line_address_alignment():
    cache = SetAssociativeCache(CacheConfig("L1", 4096, 4, line_size=64))
    assert cache.line_address(0x1234) == 0x1200


# ------------------------------------------------------------------- prefetcher

def test_stride_prefetcher_learns_constant_stride():
    prefetcher = StridePrefetcher(degree=2, confidence_threshold=2)
    pc = 0x400
    prefetches = []
    for i in range(6):
        prefetches = prefetcher.observe(pc, 0x1000 + i * 64)
    assert prefetches, "a stable stride should eventually produce prefetches"
    assert all(p % 64 == 0 for p in prefetches)


def test_stride_prefetcher_ignores_random_pattern():
    prefetcher = StridePrefetcher(degree=2, confidence_threshold=3)
    addresses = [0x1000, 0x5780, 0x2310, 0x9990, 0x4440]
    results = [prefetcher.observe(0x400, a) for a in addresses]
    assert all(not r for r in results)


def test_stream_prefetcher_next_lines():
    prefetcher = StreamPrefetcher(degree=2)
    prefetcher.observe(0, 0x1000)
    prefetches = prefetcher.observe(0, 0x1040)
    assert 0x1080 in prefetches and 0x10C0 in prefetches


# ------------------------------------------------------------------------- DRAM

def test_dram_row_hit_is_cheaper_than_row_miss():
    dram = DramModel(DramConfig())
    first = dram.access_latency(0x10000)
    second = dram.access_latency(0x10040)     # same row
    far = dram.access_latency(0x10000 + 64 * 2048 * 16)
    assert second < first
    assert far > second
    assert dram.accesses() == 3


# -------------------------------------------------------------------------- TLB

def test_tlb_hit_and_miss_penalties():
    tlb = Tlb(TlbConfig(entries=4, ways=2, miss_penalty=20))
    assert tlb.translate(0x1000) == 20
    assert tlb.translate(0x1008) == 0
    assert tlb.hit_rate() == 0.5


def test_tlb_config_validation():
    with pytest.raises(ValueError):
        TlbConfig(entries=5, ways=2)


# -------------------------------------------------------------------- hierarchy

def test_hierarchy_repeated_access_hits_l1():
    hierarchy = MemoryHierarchy()
    first_latency, first_level = hierarchy.load_access(0x100000, pc=0x400)
    second_latency, second_level = hierarchy.load_access(0x100000, pc=0x400)
    assert first_level in ("L2", "LLC", "DRAM")
    assert second_level == "L1D"
    assert second_latency < first_latency


def test_hierarchy_counts_l1_accesses_for_loads_and_stores():
    hierarchy = MemoryHierarchy()
    hierarchy.load_access(0x5000)
    hierarchy.store_access(0x6000)
    assert hierarchy.l1d_accesses() == 2


def test_hierarchy_eviction_listener_fires():
    small_l1 = CacheConfig("L1D", 2 * 64, 2, line_size=64, latency=5)
    config = MemoryHierarchyConfig(l1d=small_l1, enable_prefetchers=False)
    hierarchy = MemoryHierarchy(config)
    evicted = []
    hierarchy.l1_eviction_listeners.append(evicted.append)
    for i in range(8):
        hierarchy.load_access(i * 0x80)
    assert evicted, "filling past capacity must evict"


def test_hierarchy_invalidate_line_forces_miss():
    hierarchy = MemoryHierarchy()
    hierarchy.load_access(0x9000)
    hierarchy.invalidate_line(0x9000)
    _, level = hierarchy.load_access(0x9000)
    assert level != "L1D" or hierarchy.l1d.stats.misses >= 1


def test_hierarchy_stats_summary_keys():
    hierarchy = MemoryHierarchy()
    hierarchy.load_access(0x1234)
    summary = hierarchy.stats_summary()
    for key in ("l1d", "l2", "llc", "dram_accesses", "dtlb_accesses", "service_levels"):
        assert key in summary


# -------------------------------------------------------------------- directory

def test_directory_snoop_requires_cv_bit():
    directory = Directory(num_cores=2)
    assert directory.snoop_reaches_core(0x1000, core=0) is False
    directory.record_fill(0x1000, core=0)
    assert directory.snoop_reaches_core(0x1000, core=0) is True
    # The snoop delivery cleared the CV bit.
    assert directory.snoop_reaches_core(0x1000, core=0) is False


def test_directory_eviction_clears_cv_bit_unless_pinned():
    directory = Directory()
    directory.record_fill(0x2000, core=0)
    directory.record_eviction(0x2000, core=0)
    assert directory.snoop_reaches_core(0x2000, core=0) is False

    directory.record_fill(0x3000, core=0)
    directory.pin(0x3000, core=0)
    directory.record_eviction(0x3000, core=0)
    assert directory.has_cv_bit(0x3000, core=0)
    assert directory.snoop_reaches_core(0x3000, core=0) is True


def test_directory_pin_and_unpin():
    directory = Directory()
    directory.pin(0x4000, core=1)
    assert directory.is_pinned(0x4000, core=1)
    directory.unpin(0x4000, core=1)
    assert not directory.is_pinned(0x4000, core=1)


def test_directory_line_granularity():
    directory = Directory(line_size=64)
    directory.record_fill(0x5000, core=0)
    # Another byte in the same cache line shares the directory entry.
    assert directory.snoop_reaches_core(0x5020, core=0) is True
