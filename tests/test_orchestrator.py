"""Differential and contract tests for the cross-figure sweep orchestrator.

The three load-bearing guarantees:

* **Bit-identity** — orchestrated figure payloads equal the serial
  per-figure path (fresh runner per figure) exactly, at 1, 2 and 4 workers.
* **At-most-once execution** — each unique ``(config, workload)`` simulation
  runs at most once across all requested figures; content-identical jobs
  demanded under different names (fig. 13's ``all_loads`` vs ``constable``)
  share one execution.
* **Plan/harness consistency** — every figure harness runs with *zero*
  simulations after its own plan's wave, so the :data:`FIGURE_PLANS`
  registry can never silently drift from the harnesses it mirrors.
"""

from __future__ import annotations

import pytest

from repro.experiments.cache import ReportCache, ResultCache
from repro.experiments.configs import baseline_config, constable_config
from repro.experiments.figures import FIGURE_HARNESSES
from repro.experiments.orchestrator import (
    FIGURE_PLANS,
    FigurePlan,
    SweepOrchestrator,
    orchestrate_figures,
)
from repro.experiments.parallel import ParallelExperimentRunner
from repro.experiments.runner import ExperimentRunner, Shard
from repro.pipeline.cpu import OutOfOrderCore

SUITES = ("Client", "Server")
INSTRUCTIONS = 600
#: Overlap-heavy subset used by the differential tests; fig14 adds SMT jobs.
FIGURES = ("fig11", "fig13", "fig14", "fig16", "fig17")


def _make_runner(workers: int = 1, cache_dir=None) -> ExperimentRunner:
    kwargs = dict(per_suite=1, instructions=INSTRUCTIONS, suites=SUITES)
    if cache_dir is not None:
        kwargs.update(cache=ResultCache(cache_dir),
                      report_cache=ReportCache(cache_dir))
    if workers > 1:
        return ParallelExperimentRunner(**kwargs, max_workers=workers)
    return ExperimentRunner(**kwargs)


@pytest.fixture()
def simulation_counter(monkeypatch):
    calls = {"count": 0}
    original = OutOfOrderCore.run

    def counted(self):
        calls["count"] += 1
        return original(self)

    monkeypatch.setattr(OutOfOrderCore, "run", counted)
    return calls


@pytest.fixture(scope="module")
def serial_reference():
    """Serial per-figure reference payloads: a fresh runner per figure."""
    reference = {}
    for name in FIGURES:
        with _make_runner() as runner:
            reference[name] = FIGURE_HARNESSES[name](runner)
    return reference


# ------------------------------------------------------------------ registry

def test_every_figure_harness_has_a_plan():
    assert set(FIGURE_PLANS) == set(FIGURE_HARNESSES)


def test_plans_carry_their_own_figure_name():
    for name, factory in FIGURE_PLANS.items():
        assert factory().figure == name


# -------------------------------------------------------------- bit-identity

@pytest.mark.parametrize("workers", [1, 2, 4])
def test_orchestrated_figures_bit_identical_to_serial(workers, serial_reference):
    with _make_runner(workers) as runner:
        results, stats = orchestrate_figures(runner, list(FIGURES))
    for name in FIGURES:
        assert results[name] == serial_reference[name], name
    assert stats.planned > stats.unique, "overlapping figures must dedup"
    assert stats.executed == stats.unique  # cold runner, no cache


# ------------------------------------------------------------- at-most-once

def test_each_unique_simulation_runs_at_most_once(simulation_counter):
    with _make_runner() as runner:
        _, stats = orchestrate_figures(runner, list(FIGURES))
    assert simulation_counter["count"] == stats.executed
    # fig13's all_loads is content-identical to constable, and baseline is
    # demanded by several figures: far fewer executions than figure demand.
    assert stats.executed < stats.planned


def test_plans_match_harness_config_contents(monkeypatch):
    """Content drift between a plan and its harness cannot ship.

    ``test_harnesses_after_wave_simulate_nothing`` proves the plans cover the
    harnesses' *names*; this proves the *contents* match: every config a
    harness actually passes to ``run_config``/``run_smt_config`` is captured,
    materialised and fingerprinted (the dedup/cache-key material), and each
    plan's declared config must fingerprint identically.  It also asserts no
    two harnesses use one name for different contents — the property that
    makes committing a shared result under a merged name sound.
    """
    from repro.experiments.cache import config_fingerprint

    captured: dict = {}       # name -> set of fingerprint texts (harness side)
    captured_smt: dict = {}   # name -> (fingerprints, max_pairs values)

    def _text(runner, config):
        run = next(iter(runner.workloads().values()))
        materialised = runner._materialise_config(config, run)
        import json as _json
        return _json.dumps(config_fingerprint(materialised), sort_keys=True,
                           default=str)

    original_run = ExperimentRunner.run_config
    original_smt = ExperimentRunner.run_smt_config

    def recording_run(self, name, config, workload_names=None, shard=None):
        captured.setdefault(name, set()).add(_text(self, config))
        return original_run(self, name, config, workload_names, shard)

    def recording_smt(self, name, config, max_pairs=None, shard=None):
        fingerprints, budgets = captured_smt.setdefault(name, (set(), set()))
        fingerprints.add(_text(self, config))
        budgets.add(max_pairs)
        return original_smt(self, name, config, max_pairs, shard)

    monkeypatch.setattr(ExperimentRunner, "run_config", recording_run)
    monkeypatch.setattr(ExperimentRunner, "run_smt_config", recording_smt)
    with _make_runner() as shared:
        for name in FIGURE_PLANS:
            FIGURE_HARNESSES[name](shared)

    for name, fingerprints in captured.items():
        assert len(fingerprints) == 1, (
            f"harnesses disagree on the contents of config {name!r}")
    with _make_runner() as clean:
        for figure, factory in FIGURE_PLANS.items():
            plan = factory()
            for name, config in plan.configs.items():
                assert name in captured, (figure, name)
                assert _text(clean, config) in captured[name], (
                    f"plan {figure} declares different contents for "
                    f"{name!r} than the harness runs")
            for name, config in plan.smt_configs.items():
                assert name in captured_smt, (figure, name)
                fingerprints, budgets = captured_smt[name]
                assert _text(clean, config) in fingerprints, (figure, name)
                assert plan.smt_max_pairs in budgets, (
                    f"plan {figure} requests max_pairs={plan.smt_max_pairs} "
                    f"but the harness used {budgets}")
    # And nothing a harness runs is missing from the union of plans.
    declared = set()
    declared_smt = set()
    for factory in FIGURE_PLANS.values():
        plan = factory()
        declared.update(plan.configs)
        declared_smt.update(plan.smt_configs)
    assert set(captured) <= declared
    assert set(captured_smt) <= declared_smt


def test_harnesses_after_wave_simulate_nothing(simulation_counter):
    """Plan/harness consistency over *every* orchestratable figure."""
    with _make_runner() as runner:
        orchestrate_figures(runner, list(FIGURE_PLANS))
        during_wave = simulation_counter["count"]
        for name in FIGURE_PLANS:
            FIGURE_HARNESSES[name](runner)
        assert simulation_counter["count"] == during_wave, (
            "a figure harness demanded a job its plan did not declare")


def test_second_orchestration_is_a_no_op(simulation_counter):
    with _make_runner() as runner:
        orchestrate_figures(runner, ["fig11"])
        before = simulation_counter["count"]
        _, stats = orchestrate_figures(runner, ["fig11", "fig12"])
        # fig12's configs are a subset of fig11's: everything is committed.
        assert simulation_counter["count"] == before
        assert stats.executed == stats.unique == 0


# ------------------------------------------------------------------- caching

def test_warm_cache_wave_executes_nothing(tmp_path, simulation_counter,
                                          serial_reference):
    with _make_runner(cache_dir=tmp_path) as cold:
        _, cold_stats = orchestrate_figures(cold, list(FIGURES))
    executed_cold = simulation_counter["count"]
    assert executed_cold == cold_stats.executed
    with _make_runner(cache_dir=tmp_path) as warm:
        warm_results, warm_stats = orchestrate_figures(warm, list(FIGURES))
    assert simulation_counter["count"] == executed_cold, "warm wave simulated"
    assert warm_stats.executed == 0
    assert warm_stats.cache_warm == warm_stats.unique == cold_stats.unique
    assert len(cold_stats.cold_jobs) == cold_stats.executed, \
        "every executed job must be named for --expect-warm diagnostics"
    assert warm_stats.cold_jobs == [], "a warm wave has no cold jobs to name"
    for name in FIGURES:
        assert warm_results[name] == serial_reference[name], name


def test_aliased_results_share_one_cache_entry(tmp_path):
    """Content-identical jobs under different names store one entry."""
    with _make_runner(cache_dir=tmp_path) as runner:
        plan = FigurePlan("alias", configs={
            "constable": constable_config(),
            "all_loads": constable_config(),
        })
        stats = SweepOrchestrator(runner).execute([plan])
        workload_count = len(runner.workloads())
    assert stats.planned == 2 * workload_count
    assert stats.unique == stats.executed == workload_count


# ------------------------------------------------------------------ sharding

def test_sharded_orchestration_merges_bit_identical(tmp_path, simulation_counter):
    plan_factory = lambda: FigurePlan("sweep", configs={  # noqa: E731
        "baseline": baseline_config(),
        "constable": constable_config(),
    }, smt_configs={"baseline": baseline_config()}, smt_max_pairs=1)

    with _make_runner() as serial:
        SweepOrchestrator(serial).execute([plan_factory()])
        expected = {name: run.results["constable"].cycles
                    for name, run in serial.workloads().items()}
        expected_smt = {pair: result.cycles for pair, result in
                        serial.run_smt_config("baseline", baseline_config(),
                                              max_pairs=1).items()}

    for index in (1, 2):
        with _make_runner(cache_dir=tmp_path) as host:
            SweepOrchestrator(host).execute([plan_factory()],
                                            shard=Shard(index, 2))
    before = simulation_counter["count"]
    with _make_runner(cache_dir=tmp_path) as merged:
        stats = SweepOrchestrator(merged).execute([plan_factory()])
        assert stats.executed == 0, "merge must fold warm shard entries"
        got = {name: run.results["constable"].cycles
               for name, run in merged.workloads().items()}
        got_smt = {pair: result.cycles for pair, result in
                   merged.run_smt_config("baseline", baseline_config(),
                                         max_pairs=1).items()}
    assert simulation_counter["count"] == before
    assert got == expected
    assert got_smt == expected_smt


def test_shards_partition_the_wave_disjointly(tmp_path):
    plan = FigurePlan("sweep", configs={"baseline": baseline_config()})
    executed = []
    for index in (1, 2):
        with _make_runner(cache_dir=tmp_path) as host:
            stats = SweepOrchestrator(host).execute([plan], shard=Shard(index, 2))
            executed.append(stats.executed)
    assert sum(executed) == 2  # two workloads, one each


# --------------------------------------------------------------- plan merging

def test_colliding_config_names_with_different_contents_are_rejected():
    """One name meaning two configs would hand a figure another's data."""
    with _make_runner() as runner:
        conflicting = [
            FigurePlan("a", configs={"baseline": baseline_config()}),
            FigurePlan("b", configs={"baseline": constable_config()}),
        ]
        with pytest.raises(ValueError, match="disagree.*baseline"):
            SweepOrchestrator(runner).execute(conflicting)
        smt_conflicting = [
            FigurePlan("a", smt_configs={"baseline": baseline_config()},
                       smt_max_pairs=1),
            FigurePlan("b", smt_configs={"baseline": constable_config()},
                       smt_max_pairs=1),
        ]
        with pytest.raises(ValueError, match="disagree.*baseline"):
            SweepOrchestrator(runner).execute(smt_conflicting)
        # Same name, same content (fresh factory calls) merges fine.
        agreeing = [
            FigurePlan("a", configs={"baseline": baseline_config()}),
            FigurePlan("b", configs={"baseline": baseline_config()}),
        ]
        stats = SweepOrchestrator(runner).execute(agreeing)
        assert stats.unique == len(runner.workloads())


def test_smt_pair_budgets_merge_to_the_loosest_request():
    runner = _make_runner()
    orchestrator = SweepOrchestrator(runner)
    bounded = FigurePlan("a", smt_configs={"baseline": baseline_config()},
                         smt_max_pairs=1)
    looser = FigurePlan("b", smt_configs={"baseline": baseline_config()},
                        smt_max_pairs=2)
    unbounded = FigurePlan("c", smt_configs={"baseline": baseline_config()},
                           smt_max_pairs=None)
    _, merged_smt, _ = orchestrator._merge_plans([bounded, looser], shard=None)
    config, bound, is_unbounded = merged_smt["baseline"]
    assert (bound, is_unbounded) == (2, False)
    _, merged_smt, _ = orchestrator._merge_plans([bounded, unbounded], shard=None)
    _, bound, is_unbounded = merged_smt["baseline"]
    assert is_unbounded


def test_dedup_stats_serialise_round_trip():
    with _make_runner() as runner:
        _, stats = orchestrate_figures(runner, ["fig11", "fig13"])
    payload = stats.to_dict()
    assert payload["planned"] == stats.planned
    assert payload["deduped"] == stats.planned - stats.unique
    assert payload["executed"] + payload["cache_warm"] == payload["unique"]
    assert payload["figures"] == ["fig11", "fig13"]
