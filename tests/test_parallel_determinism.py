"""Differential tests: parallel sharded execution is bit-identical to serial.

The parallel runner regenerates traces in workers from the workload spec's
seed and merges shard results keyed by workload name (or SMT pair), so
neither the worker count nor shard completion order may change any statistic
— or any trace bit.  These tests run the same sweeps serially and with 1-,
2- and 4-worker pools and require equality of:

* every generated trace (full dynamic content, via ``trace_signature``) and
  every Load Inspector report, covering the sharded cold-start path;
* the *entire* :class:`SimulationResult` of every (workload, config) pair
  (every pipeline counter included);
* every :class:`SmtResult` of the SMT2 pair sweeps;

and then check that aggregation is merge-order independent.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.analysis.stats_utils import geomean
from repro.experiments.configs import (
    baseline_config,
    constable_config,
    eves_config,
    eves_constable_config,
)
from repro.experiments.parallel import ParallelExperimentRunner
from repro.experiments.runner import ExperimentRunner
from repro.workloads.generator import trace_signature

#: Reduced sweep shared by the differential tests.
SUITES = ("Client", "ISPEC17", "Server")
INSTRUCTIONS = 1500
CONFIGS = {
    "baseline": baseline_config,
    "constable": constable_config,
}

#: Reduced SMT sweep: 2 suites x 2 workloads -> 2 cross-suite pairs.
SMT_SUITES = ("Client", "Server")
SMT_PER_SUITE = 2
SMT_INSTRUCTIONS = 1200
SMT_CONFIGS = {
    "baseline": baseline_config,
    "constable": constable_config,
}


def _run_sweep(runner: ExperimentRunner) -> ExperimentRunner:
    for name, factory in CONFIGS.items():
        runner.run_config(name, factory())
    return runner


@pytest.fixture(scope="module")
def serial_runner():
    return _run_sweep(ExperimentRunner(per_suite=1, instructions=INSTRUCTIONS,
                                       suites=SUITES))


@pytest.fixture(scope="module", params=[1, 2, 4],
                ids=["workers1", "workers2", "workers4"])
def parallel_runner(request):
    runner = ParallelExperimentRunner(per_suite=1, instructions=INSTRUCTIONS,
                                      suites=SUITES, max_workers=request.param)
    yield _run_sweep(runner)
    runner.close()


def _run_smt_sweep(runner: ExperimentRunner):
    sweeps = {name: runner.run_smt_config(name, factory())
              for name, factory in SMT_CONFIGS.items()}
    return runner, sweeps


@pytest.fixture(scope="module")
def serial_smt():
    return _run_smt_sweep(ExperimentRunner(per_suite=SMT_PER_SUITE,
                                           instructions=SMT_INSTRUCTIONS,
                                           suites=SMT_SUITES))


@pytest.fixture(scope="module", params=[1, 2, 4],
                ids=["workers1", "workers2", "workers4"])
def parallel_smt(request):
    runner = ParallelExperimentRunner(per_suite=SMT_PER_SUITE,
                                      instructions=SMT_INSTRUCTIONS,
                                      suites=SMT_SUITES,
                                      max_workers=request.param)
    yield _run_smt_sweep(runner)
    runner.close()


# ----------------------------------------------------------- trace generation

def test_parallel_trace_generation_identical_to_serial(serial_runner, parallel_runner):
    """Sharded cold-start generation yields bit-identical traces and reports."""
    serial_workloads = serial_runner.workloads()
    parallel_workloads = parallel_runner.workloads()
    assert list(serial_workloads) == list(parallel_workloads), \
        "workload order must follow spec order, not shard completion order"
    for workload, serial_run in serial_workloads.items():
        parallel_run = parallel_workloads[workload]
        assert serial_run.spec == parallel_run.spec
        assert trace_signature(serial_run.trace) == trace_signature(parallel_run.trace), \
            workload
        assert serial_run.report.to_dict() == parallel_run.report.to_dict(), workload


# -------------------------------------------------------------- single thread


def test_parallel_results_identical_to_serial(serial_runner, parallel_runner):
    """Every workload/config pair produces an identical SimulationResult."""
    serial_workloads = serial_runner.workloads()
    parallel_workloads = parallel_runner.workloads()
    assert set(serial_workloads) == set(parallel_workloads)
    for workload, serial_run in serial_workloads.items():
        parallel_run = parallel_workloads[workload]
        for config in CONFIGS:
            serial_result = serial_run.results[config]
            parallel_result = parallel_run.results[config]
            # Dataclass equality covers cycles, every PipelineStats counter,
            # power events, memory stats, per-thread records, ...
            assert serial_result == parallel_result, (workload, config)


def test_parallel_aggregates_identical_to_serial(serial_runner, parallel_runner):
    for config in CONFIGS:
        if config == "baseline":
            continue
        assert (parallel_runner.speedups(config)
                == serial_runner.speedups(config))
        assert (parallel_runner.speedups_by_suite(config)
                == serial_runner.speedups_by_suite(config))
        assert (parallel_runner.geomean_speedup(config)
                == serial_runner.geomean_speedup(config))


# ------------------------------------------------------------------------ SMT

def test_parallel_smt_sweep_identical_to_serial(serial_smt, parallel_smt):
    """Every SMT pair/config produces an identical SmtResult at any worker count."""
    _, serial_sweeps = serial_smt
    _, parallel_sweeps = parallel_smt
    assert set(serial_sweeps) == set(parallel_sweeps)
    for config, serial_results in serial_sweeps.items():
        parallel_results = parallel_sweeps[config]
        assert list(serial_results) == list(parallel_results), \
            "pair order must follow smt_pairs order, not shard completion order"
        for pair, serial_result in serial_results.items():
            parallel_result = parallel_results[pair]
            # Dataclass equality covers the full SimulationResult (cycles,
            # every PipelineStats counter, power events, per-thread records)
            # plus the per-thread IPC list.
            assert serial_result == parallel_result, (config, pair)


def test_parallel_smt_speedups_identical_to_serial(serial_smt, parallel_smt):
    """Weighted speedups derived from the sweeps match exactly."""
    _, serial_sweeps = serial_smt
    _, parallel_sweeps = parallel_smt
    for flavour_sweeps in (serial_sweeps, parallel_sweeps):
        assert set(flavour_sweeps["baseline"]) == set(flavour_sweeps["constable"])
    for pair in serial_sweeps["baseline"]:
        serial_ws = serial_sweeps["constable"][pair].weighted_speedup_over(
            serial_sweeps["baseline"][pair])
        parallel_ws = parallel_sweeps["constable"][pair].weighted_speedup_over(
            parallel_sweeps["baseline"][pair])
        assert serial_ws == parallel_ws, pair
        assert (serial_sweeps["baseline"][pair].throughput()
                == parallel_sweeps["baseline"][pair].throughput()), pair


# ---------------------------------------------------------------- aggregation

def test_shard_merge_order_does_not_change_geomean(serial_runner):
    """Geomean aggregation is invariant under any shard/merge ordering."""
    speedups = serial_runner.speedups("constable")
    forward = geomean(list(speedups.values()))
    reversed_order = geomean([speedups[name] for name in sorted(speedups, reverse=True)])
    assert forward == pytest.approx(reversed_order, rel=0, abs=1e-12)
    assert serial_runner.geomean_speedup("constable") == pytest.approx(forward)


def test_executor_merges_by_workload_not_completion_order(serial_runner):
    """_execute_jobs output is keyed by workload, so merging is a plain dict update."""
    jobs = serial_runner.plan_jobs("eves", eves_config())
    assert jobs, "eves has not run yet, every workload should be planned"
    results = serial_runner._execute_jobs(list(reversed(jobs)))
    assert set(results) == {job.workload for job in jobs}


@pytest.mark.skipif((os.cpu_count() or 1) < 4,
                    reason="wall-clock speedup comparison needs >= 4 CPUs; on "
                           "smaller machines pool startup and per-worker trace "
                           "regeneration can eat the margin and flake")
def test_parallel_sweep_is_faster_than_serial():
    """4 workers complete the reduced benchmark sweep measurably faster."""
    factories = {
        "baseline": baseline_config,
        "constable": constable_config,
        "eves": eves_config,
        "eves+constable": eves_constable_config,
    }

    def timed_sweep(runner: ExperimentRunner) -> float:
        runner.workloads()           # trace generation is common to both flavours
        start = time.perf_counter()
        for name, factory in factories.items():
            runner.run_config(name, factory())
        return time.perf_counter() - start

    serial_seconds = timed_sweep(ExperimentRunner(per_suite=1, instructions=4000))
    with ParallelExperimentRunner(per_suite=1, instructions=4000,
                                  max_workers=4) as parallel:
        parallel_seconds = timed_sweep(parallel)
    assert parallel_seconds < serial_seconds * 0.9, (
        f"parallel sweep took {parallel_seconds:.2f}s vs serial {serial_seconds:.2f}s")
