"""Integration tests for Constable inside the pipeline, including the golden check."""

import pytest

from repro.core import ConstableConfig
from repro.core.ideal import IdealMode, build_oracle_from_trace
from repro.analysis import inspect_trace
from repro.isa.instruction import AddressingMode
from repro.pipeline import CoreConfig, simulate_trace


def test_constable_retires_all_instructions_and_passes_golden_check(client_trace, constable_result):
    # simulate_trace would have raised GoldenCheckError on any mismatch.
    assert constable_result.instructions == len(client_trace)
    assert constable_result.stats.golden_checks == len(client_trace.loads())


def test_constable_eliminates_loads(constable_result):
    assert constable_result.constable_stats is not None
    assert constable_result.constable_stats["loads_eliminated"] > 0
    assert constable_result.stats.eliminated_loads_retired > 0
    assert 0.0 < constable_result.constable_stats["elimination_coverage"] < 1.0


def test_constable_reduces_l1d_accesses_and_rs_allocations(baseline_result, constable_result):
    assert (constable_result.power_events["l1d_accesses"]
            < baseline_result.power_events["l1d_accesses"])
    assert (constable_result.resource_stats["rs_allocations"]
            <= baseline_result.resource_stats["rs_allocations"])


def test_constable_never_catastrophically_slows_down(baseline_result, constable_result):
    assert constable_result.cycles <= baseline_result.cycles * 1.05


def test_constable_on_all_suites_passes_golden_check(server_trace, ispec_trace,
                                                     constable_test_config):
    for trace in (server_trace, ispec_trace):
        result = simulate_trace(trace, CoreConfig(constable=constable_test_config))
        assert result.instructions == len(trace)


def test_constable_with_snoop_traffic(server_trace, constable_test_config):
    result = simulate_trace(server_trace, CoreConfig(constable=constable_test_config))
    # The Server suite generates external writes; elimination must stay correct.
    assert result.instructions == len(server_trace)
    assert result.constable_stats["loads_eliminated"] > 0


def test_constable_paper_default_threshold_is_usable(client_trace):
    result = simulate_trace(client_trace, CoreConfig(constable=ConstableConfig()))
    assert result.instructions == len(client_trace)
    # Threshold 30 on a short trace eliminates few loads, but must stay correct.
    assert result.constable_stats["loads_eliminated"] >= 0


def test_addressing_mode_restriction_reduces_coverage(client_trace, constable_test_config,
                                                      constable_result):
    pc_only = ConstableConfig(
        confidence_threshold=constable_test_config.confidence_threshold,
        eliminate_addressing_modes=frozenset({AddressingMode.PC_RELATIVE}))
    restricted = simulate_trace(client_trace, CoreConfig(constable=pc_only))
    assert (restricted.constable_stats["loads_eliminated"]
            <= constable_result.constable_stats["loads_eliminated"])


def test_amt_invalidate_variant_covers_no_more_than_vanilla(client_trace, constable_test_config,
                                                            constable_result):
    amt_i = ConstableConfig(
        confidence_threshold=constable_test_config.confidence_threshold,
        amt_invalidate_on_l1_eviction=True, pin_cv_bits=False)
    result = simulate_trace(client_trace, CoreConfig(constable=amt_i))
    assert result.instructions == len(client_trace)
    assert (result.constable_stats["loads_eliminated"]
            <= constable_result.constable_stats["loads_eliminated"] * 1.05 + 5)


def test_xprf_failure_rate_is_bounded(constable_result):
    # The synthetic traces keep far more eliminated loads in flight than the
    # paper's workloads (which see only ~0.2% xPRF-full events), so the bound
    # here is loose; it still catches an xPRF that never frees its entries.
    assert constable_result.constable_stats["xprf_failure_rate"] < 0.7


def test_ordering_violations_are_rare(constable_result):
    eliminated = max(1, constable_result.constable_stats["loads_eliminated"])
    violations = constable_result.constable_stats["ordering_violations"]
    assert violations / eliminated < 0.05


def test_sld_update_rate_is_small(constable_result):
    assert constable_result.stats.average_sld_updates_per_cycle() < 2.0


def test_ideal_constable_outperforms_or_matches_real(client_trace, baseline_result,
                                                     constable_result):
    oracle = build_oracle_from_trace(client_trace, mode=IdealMode.CONSTABLE)
    ideal = simulate_trace(client_trace, CoreConfig(ideal_oracle=oracle))
    assert ideal.instructions == len(client_trace)
    assert ideal.cycles <= constable_result.cycles * 1.02


def test_ideal_stable_lvp_runs_and_is_no_slower_than_baseline(client_trace, baseline_result):
    oracle = build_oracle_from_trace(client_trace, mode=IdealMode.STABLE_LVP)
    result = simulate_trace(client_trace, CoreConfig(ideal_oracle=oracle))
    assert result.cycles <= baseline_result.cycles * 1.02


def test_stats_oracle_classification(client_trace, constable_test_config):
    report = inspect_trace(client_trace)
    config = CoreConfig(constable=constable_test_config,
                        stats_oracle_pcs=report.global_stable_pcs())
    result = simulate_trace(client_trace, config)
    stats = result.stats
    assert stats.oracle_stable_loads_renamed > 0
    assert stats.eliminated_oracle_stable_loads <= stats.oracle_stable_loads_renamed
    assert (stats.eliminated_oracle_stable_loads + stats.eliminated_non_stable_loads
            == stats.eliminated_loads_retired)
