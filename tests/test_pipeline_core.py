"""Integration tests for the out-of-order core: baseline behaviour and invariants."""

import pytest

from repro.backend.ports import PortConfig
from repro.pipeline import CoreConfig, OutOfOrderCore, simulate_trace
from repro.rename.optimizations import RenameOptimizationConfig


def test_baseline_retires_every_instruction(client_trace, baseline_result):
    assert baseline_result.instructions == len(client_trace)
    assert baseline_result.cycles > 0
    assert 0.1 < baseline_result.ipc <= 6.0


def test_baseline_is_deterministic(client_trace):
    first = simulate_trace(client_trace, CoreConfig())
    second = simulate_trace(client_trace, CoreConfig())
    assert first.cycles == second.cycles
    assert first.power_events == second.power_events


def test_golden_checks_cover_all_loads(client_trace, baseline_result):
    assert baseline_result.stats.golden_checks == len(client_trace.loads())


def test_resource_counters_are_consistent(baseline_result):
    stats = baseline_result.stats
    resources = baseline_result.resource_stats
    assert resources["rob_allocations"] >= baseline_result.instructions
    assert resources["rs_allocations"] <= resources["rob_allocations"]
    assert stats.rs_issues <= resources["rs_allocations"]
    assert stats.loads_executed <= stats.loads_renamed


def test_ipc_bounded_by_rename_width(baseline_result):
    assert baseline_result.ipc <= CoreConfig().rename_width + 1e-9


def test_power_events_present(baseline_result):
    events = baseline_result.power_events
    for key in ("uops_fetched", "uops_renamed", "rs_allocations", "l1d_accesses",
                "dtlb_accesses", "retired", "cycles"):
        assert key in events
        assert events[key] >= 0
    assert events["l1d_accesses"] > 0


def test_memory_stats_reported(baseline_result):
    assert baseline_result.memory_stats["l1d"]["accesses"] > 0
    assert baseline_result.memory_stats["dtlb_accesses"] > 0


def test_branch_predictor_is_exercised(ispec_trace):
    result = simulate_trace(ispec_trace, CoreConfig())
    assert result.stats.branches_predicted > 0
    assert result.stats.branch_mispredictions >= 1
    assert result.stats.branch_mispredictions < result.stats.branches_predicted


def test_wider_load_width_never_slows_down(client_trace, baseline_result):
    wide = simulate_trace(client_trace, CoreConfig().with_load_width(6))
    assert wide.cycles <= baseline_result.cycles * 1.02


def test_scaling_down_resources_hurts_or_equals(client_trace, baseline_result):
    shallow = simulate_trace(client_trace, CoreConfig().with_depth_scale(0.125))
    assert shallow.cycles >= baseline_result.cycles


def test_narrow_machine_is_slower(client_trace, baseline_result):
    narrow = CoreConfig(fetch_width=2, decode_width=2, rename_width=2, retire_width=2,
                        ports=PortConfig(issue_width=2, alu=2, load=1,
                                         store_address=1, store_data=1))
    result = simulate_trace(client_trace, narrow)
    assert result.cycles > baseline_result.cycles


def test_disabling_rename_optimizations_increases_rs_pressure(client_trace, baseline_result):
    config = CoreConfig(rename_optimizations=RenameOptimizationConfig(
        move_elimination=False, zero_elimination=False,
        constant_folding=False, branch_folding=False))
    result = simulate_trace(client_trace, config)
    assert (result.resource_stats["rs_allocations"]
            > baseline_result.resource_stats["rs_allocations"])


def test_memory_renaming_can_be_disabled(client_trace):
    result = simulate_trace(client_trace, CoreConfig(enable_memory_renaming=False))
    assert result.instructions == len(client_trace)


def test_load_utilized_cycles_fraction_sane(baseline_result):
    fraction = baseline_result.stats.load_utilized_cycles / baseline_result.cycles
    assert 0.0 < fraction < 1.0


def test_core_rejects_empty_and_oversubscribed_traces(client_trace):
    with pytest.raises(ValueError):
        OutOfOrderCore(CoreConfig(), [])
    with pytest.raises(ValueError):
        OutOfOrderCore(CoreConfig(), [client_trace] * 3)


def test_config_validation():
    with pytest.raises(ValueError):
        CoreConfig(rename_width=0)
    with pytest.raises(ValueError):
        CoreConfig(lvp="unknown")
    with pytest.raises(ValueError):
        CoreConfig().with_load_width(0)


def test_config_copy_is_independent():
    config = CoreConfig()
    wider = config.with_load_width(5)
    assert config.ports.load == 3
    assert wider.ports.load == 5
    deeper = config.with_depth_scale(2.0)
    assert deeper.sizes.rob == config.sizes.rob * 2
