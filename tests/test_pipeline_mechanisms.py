"""Integration tests for EVES, ELAR, RFP, combinations and SMT2."""

from repro.pipeline import CoreConfig, simulate_smt_pair, simulate_trace
from repro.workloads import generate_trace, workload_specs_for_suite


def test_eves_runs_and_predicts(client_trace):
    result = simulate_trace(client_trace, CoreConfig(lvp="eves"))
    assert result.instructions == len(client_trace)
    assert result.lvp_stats is not None
    assert result.lvp_stats["predictions"] > 0
    assert result.lvp_stats["accuracy"] > 0.9


def test_eves_never_catastrophically_slows_down(client_trace, baseline_result):
    result = simulate_trace(client_trace, CoreConfig(lvp="eves"))
    assert result.cycles <= baseline_result.cycles * 1.05


def test_llvp_runs(client_trace):
    result = simulate_trace(client_trace, CoreConfig(lvp="llvp"))
    assert result.instructions == len(client_trace)


def test_elar_and_rfp_run(client_trace, baseline_result):
    elar = simulate_trace(client_trace, CoreConfig(enable_elar=True))
    rfp = simulate_trace(client_trace, CoreConfig(enable_rfp=True))
    assert elar.instructions == len(client_trace)
    assert rfp.instructions == len(client_trace)
    assert elar.cycles <= baseline_result.cycles * 1.05
    assert rfp.cycles <= baseline_result.cycles * 1.10


def test_eves_plus_constable_combination(client_trace, constable_test_config, baseline_result):
    result = simulate_trace(client_trace, CoreConfig(lvp="eves",
                                                     constable=constable_test_config))
    assert result.instructions == len(client_trace)
    assert result.constable_stats["loads_eliminated"] > 0
    assert result.stats.value_predicted_loads > 0
    assert result.cycles <= baseline_result.cycles * 1.05


def test_smt_pair_runs_both_threads(constable_test_config):
    spec_a = workload_specs_for_suite("Client")[0]
    spec_b = workload_specs_for_suite("Server")[0]
    trace_a = generate_trace(spec_a, num_instructions=2000)
    trace_b = generate_trace(spec_b, num_instructions=2000, base_pc=0x800000)
    baseline = simulate_smt_pair(trace_a, trace_b, CoreConfig())
    assert baseline.total_instructions == len(trace_a) + len(trace_b)
    assert len(baseline.per_thread_ipc) == 2
    assert all(ipc > 0 for ipc in baseline.per_thread_ipc)

    constable = simulate_smt_pair(trace_a, trace_b,
                                  CoreConfig(constable=constable_test_config))
    assert constable.total_instructions == baseline.total_instructions
    # Weighted speedup against the baseline run of the same pair is well defined.
    ws = constable.weighted_speedup_over(baseline)
    assert 0.8 < ws < 1.5


def test_smt_throughput_exceeds_half_of_single_thread(client_trace):
    single = simulate_trace(client_trace, CoreConfig())
    spec_b = workload_specs_for_suite("Enterprise")[0]
    trace_b = generate_trace(spec_b, num_instructions=len(client_trace), base_pc=0x800000)
    pair = simulate_smt_pair(client_trace, trace_b, CoreConfig())
    # Co-running a slow memory-bound thread drags aggregate IPC, but SMT must
    # still deliver a reasonable fraction of the single-thread throughput.
    assert pair.throughput() > single.ipc * 0.4
