"""Tests for the CACTI-like estimates and the event-based core power model."""

import pytest

from repro.power import (
    CorePowerModel,
    EnergyTable,
    TABLE3_ESTIMATES,
    cacti_estimate,
)
from repro.power.cacti import constable_structure_estimates


def test_table3_calibration_points_match_paper():
    assert TABLE3_ESTIMATES["sld"].read_energy_pj == pytest.approx(10.76)
    assert TABLE3_ESTIMATES["sld"].write_energy_pj == pytest.approx(16.70)
    assert TABLE3_ESTIMATES["rmt"].leakage_mw == pytest.approx(0.31)
    assert TABLE3_ESTIMATES["amt"].area_mm2 == pytest.approx(0.017)


def test_cacti_estimate_scales_with_size_and_ports():
    small = cacti_estimate("a", 1.0)
    large = cacti_estimate("b", 8.0)
    assert large.read_energy_pj > small.read_energy_pj
    assert large.leakage_mw > small.leakage_mw
    multi_port = cacti_estimate("c", 1.0, read_ports=4, write_ports=4)
    assert multi_port.read_energy_pj > small.read_energy_pj


def test_cacti_estimate_rejects_bad_inputs():
    with pytest.raises(ValueError):
        cacti_estimate("bad", 0)
    with pytest.raises(ValueError):
        cacti_estimate("bad", 1.0, read_ports=0)


def test_constable_structure_estimates_modes():
    calibrated = constable_structure_estimates(use_calibrated=True)
    parametric = constable_structure_estimates(use_calibrated=False)
    assert set(calibrated) == set(parametric) == {"sld", "rmt", "amt"}
    assert calibrated["sld"].read_energy_pj == pytest.approx(10.76)
    assert parametric["sld"].read_energy_pj > 0


def test_power_model_unit_breakdown_structure():
    model = CorePowerModel()
    counts = {"uops_fetched": 100, "uops_decoded": 100, "uops_renamed": 100,
              "rs_allocations": 80, "rs_issues": 80, "rob_allocations": 100,
              "retired": 100, "alu_ops": 50, "agu_ops": 30, "l1d_accesses": 30,
              "dtlb_accesses": 30, "store_commits": 10, "cycles": 60}
    breakdown = model.evaluate(counts)
    assert set(breakdown.units) == {"FE", "OOO", "EU", "MEU", "Others"}
    assert breakdown.total > 0
    assert breakdown.units["FE"] > 0 and breakdown.units["MEU"] > 0
    assert 0.0 < breakdown.fraction("OOO") < 1.0


def test_power_model_fewer_events_means_less_energy():
    model = CorePowerModel()
    base = model.evaluate({"l1d_accesses": 100, "rs_allocations": 100, "cycles": 100})
    reduced = model.evaluate({"l1d_accesses": 70, "rs_allocations": 90, "cycles": 100})
    assert reduced.total < base.total
    assert reduced.relative_to(base) < 1.0
    assert reduced.sub_unit_relative_to(base, "L1D") == pytest.approx(0.7, abs=0.05)


def test_power_model_charges_constable_structures():
    model = CorePowerModel()
    without = model.evaluate({"uops_renamed": 100})
    with_constable = model.evaluate({"uops_renamed": 100, "sld_reads": 50,
                                     "rmt_accesses": 20, "amt_accesses": 20})
    assert with_constable.units["OOO"] > without.units["OOO"]
    assert with_constable.sub_units["RAT"] > without.sub_units["RAT"]


def test_power_model_ignores_unknown_keys():
    model = CorePowerModel()
    breakdown = model.evaluate({"unknown_event": 1000})
    assert breakdown.total == 0.0


def test_energy_table_is_customisable():
    table = EnergyTable(l1d_access=500.0)
    model = CorePowerModel(table)
    breakdown = model.evaluate({"l1d_accesses": 2})
    assert breakdown.sub_units["L1D"] == pytest.approx(1000.0)
