"""Property-based tests (hypothesis) for core data structures and invariants."""

import dataclasses
import hashlib
import json
import os
import tempfile

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.load_inspector import GlobalStableReport, LoadSiteStats
from repro.analysis.stats_utils import box_whisker_summary, geomean
from repro.core import AddressMonitorTable, ConstableConfig, StableLoadDetector
from repro.experiments.cache import ResultCache
from repro.isa.instruction import MemOperand, AddressingMode
from repro.isa.registers import STACK_REGISTERS
from repro.memory.cache import CacheConfig, SetAssociativeCache
from repro.pipeline.smt import SmtResult
from repro.pipeline.stats import PipelineStats, SimulationResult
from repro.workloads.suites import WorkloadSpec
from repro.workloads.vm import SparseMemory

_addresses = st.integers(min_value=0, max_value=(1 << 44) - 1)
_values = st.integers(min_value=0, max_value=(1 << 64) - 1)
_pcs = st.integers(min_value=0x1000, max_value=0xFFFFFF)


@given(st.lists(st.tuples(_addresses, _values), min_size=1, max_size=50))
@settings(max_examples=50, deadline=None)
def test_sparse_memory_reads_back_last_write(writes):
    memory = SparseMemory()
    shadow = {}
    for address, value in writes:
        memory.write(address, value)
        shadow[address & ~0x7] = value
    for word, value in shadow.items():
        assert memory.read(word) == value


@given(st.lists(_addresses, min_size=1, max_size=200))
@settings(max_examples=50, deadline=None)
def test_cache_occupancy_never_exceeds_capacity(addresses):
    cache = SetAssociativeCache(CacheConfig("L1", 16 * 64, 4, line_size=64))
    for address in addresses:
        if not cache.access(address):
            cache.fill(address)
    assert cache.resident_lines() <= 16
    assert cache.stats.hits + cache.stats.misses == len(addresses)


@given(st.lists(st.tuples(_pcs, _addresses, _values), min_size=1, max_size=100))
@settings(max_examples=50, deadline=None)
def test_sld_confidence_is_always_within_counter_range(executions):
    config = ConstableConfig(confidence_threshold=8)
    sld = StableLoadDetector(config)
    for pc, address, value in executions:
        entry = sld.record_execution(pc, address, value)
        assert 0 <= entry.confidence <= config.confidence_max
    assert sld.tracked_loads() <= config.sld_entries


@given(st.lists(st.tuples(_addresses, _pcs), min_size=1, max_size=200))
@settings(max_examples=50, deadline=None)
def test_amt_capacity_invariants(insertions):
    config = ConstableConfig(confidence_threshold=8)
    amt = AddressMonitorTable(config)
    for address, pc in insertions:
        amt.insert(address, pc)
        assert amt.tracked_lines() <= config.amt_entries
    for address, _ in insertions:
        assert len(amt.lookup(address)) <= config.amt_pcs_per_entry


@given(st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=1, max_size=30))
@settings(max_examples=100, deadline=None)
def test_geomean_is_bounded_by_min_and_max(values):
    result = geomean(values)
    assert min(values) - 1e-9 <= result <= max(values) + 1e-9


@given(st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=50))
@settings(max_examples=100, deadline=None)
def test_box_whisker_summary_ordering(values):
    summary = box_whisker_summary(values)
    tolerance = 1e-9 + 1e-9 * max(abs(v) for v in values)
    assert summary["min"] <= summary["q1"] <= summary["median"] <= summary["q3"] <= summary["max"]
    assert summary["min"] - tolerance <= summary["mean"] <= summary["max"] + tolerance


@given(base=st.one_of(st.none(), st.integers(min_value=0, max_value=15)),
       index=st.one_of(st.none(), st.integers(min_value=0, max_value=15)),
       scale=st.sampled_from([1, 2, 4, 8]),
       disp=st.integers(min_value=-4096, max_value=1 << 30))
@settings(max_examples=200, deadline=None)
def test_addressing_mode_classification_is_total_and_consistent(base, index, scale, disp):
    operand = MemOperand(base=base, index=index, scale=scale, disp=disp)
    mode = operand.addressing_mode()
    registers = operand.address_registers()
    if not registers:
        assert mode is AddressingMode.PC_RELATIVE
    elif all(r in STACK_REGISTERS for r in registers):
        assert mode is AddressingMode.STACK_RELATIVE
    else:
        assert mode is AddressingMode.REG_RELATIVE


# ------------------------------------------------- serialization round-trips

_counters = st.integers(min_value=0, max_value=1 << 40)


def _json_round_trip(data):
    return json.loads(json.dumps(data))


@st.composite
def pipeline_stats_strategy(draw):
    counter_fields = [f.name for f in dataclasses.fields(PipelineStats)
                      if f.name != "sld_update_cycles_histogram"]
    values = {name: draw(_counters) for name in counter_fields}
    histogram = draw(st.dictionaries(st.integers(min_value=0, max_value=64),
                                     st.integers(min_value=1, max_value=1 << 20),
                                     max_size=8))
    stats = PipelineStats(**values)
    stats.sld_update_cycles_histogram = histogram
    return stats


@given(pipeline_stats_strategy())
@settings(max_examples=50, deadline=None)
def test_pipeline_stats_serialization_round_trips(stats):
    assert PipelineStats.from_dict(_json_round_trip(stats.to_dict())) == stats


_metric_dicts = st.dictionaries(
    st.text(st.characters(min_codepoint=97, max_codepoint=122), min_size=1, max_size=12),
    st.one_of(st.integers(min_value=0, max_value=1 << 40),
              st.floats(min_value=0, max_value=1e9, allow_nan=False)),
    max_size=6)


@given(stats=pipeline_stats_strategy(), cycles=_counters, instructions=_counters,
       power=_metric_dicts, resources=_metric_dicts,
       constable=st.one_of(st.none(), _metric_dicts),
       lvp=st.one_of(st.none(), _metric_dicts))
@settings(max_examples=50, deadline=None)
def test_simulation_result_serialization_round_trips(stats, cycles, instructions,
                                                     power, resources, constable, lvp):
    result = SimulationResult(
        trace_name="w", config_name="c", cycles=cycles, instructions=instructions,
        stats=stats, power_events=power, resource_stats=resources,
        constable_stats=constable, lvp_stats=lvp,
        memory_stats={"service_levels": dict(power)},
        per_thread=[{"thread": 0, "ipc": 1.5}])
    assert SimulationResult.from_dict(_json_round_trip(result.to_dict())) == result


@given(stats=pipeline_stats_strategy(), cycles=_counters, instructions=_counters,
       power=_metric_dicts,
       ipcs=st.lists(st.floats(min_value=0.0, max_value=16.0, allow_nan=False),
                     max_size=4))
@settings(max_examples=50, deadline=None)
def test_smt_result_serialization_round_trips(stats, cycles, instructions, power, ipcs):
    result = SimulationResult(
        trace_name="a+b", config_name="smt2", cycles=cycles,
        instructions=instructions, stats=stats, power_events=power,
        per_thread=[{"thread": float(i), "ipc": ipc} for i, ipc in enumerate(ipcs)])
    smt = SmtResult(result=result, per_thread_ipc=list(ipcs))
    rebuilt = SmtResult.from_dict(_json_round_trip(smt.to_dict()))
    assert rebuilt == smt
    assert rebuilt.cycles == smt.cycles
    assert rebuilt.total_instructions == smt.total_instructions
    assert rebuilt.throughput() == smt.throughput()
    if any(ipc > 0 for ipc in ipcs):
        # Derived weighted speedups must survive the round trip bit-for-bit.
        assert rebuilt.weighted_speedup_over(smt) == smt.weighted_speedup_over(smt)


# ----------------------------------------------------- cache GC invariants

_entry_sizes = st.lists(st.integers(min_value=0, max_value=8192),
                        min_size=1, max_size=20)


@given(sizes=_entry_sizes, cap_kb=st.integers(min_value=1, max_value=48))
@settings(max_examples=40, deadline=None)
def test_cache_gc_evicts_exactly_the_minimal_lru_prefix(sizes, cap_kb):
    """GC never acts below the cap, and above it evicts only the LRU prefix
    needed to get back under — never more, never newer-before-older."""
    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        paths = []
        for index, size in enumerate(sizes):
            key = hashlib.sha256(str(index).encode("utf-8")).hexdigest()
            path = cache._path_for(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_bytes(b"x" * size)
            timestamp = 1_000_000 + index  # strictly increasing recency
            os.utime(path, (timestamp, timestamp))
            paths.append(path)

        total = sum(sizes)
        cap_bytes = cap_kb * 1024
        removed = cache.gc(max_mb=cap_kb / 1024.0)

        assert cache.total_bytes() <= cap_bytes
        if total <= cap_bytes:
            assert removed == [], "GC must never evict while under the cap"
        else:
            expected_removals = 0
            remaining = total
            while remaining > cap_bytes:
                remaining -= sizes[expected_removals]
                expected_removals += 1
            assert removed == paths[:expected_removals]
            assert cache.total_bytes() == remaining
        # Survivors are exactly the most-recent suffix, all still on disk.
        survivors = {path for path, _, _ in cache.entries()}
        assert survivors == set(paths[len(removed):])


_kernel_params = st.dictionaries(
    st.sampled_from(["inner_iterations", "depth", "num_globals", "region_words"]),
    st.integers(min_value=1, max_value=1 << 20), max_size=4)


@given(name=st.text(st.characters(min_codepoint=97, max_codepoint=122),
                    min_size=1, max_size=16),
       suite=st.sampled_from(["Client", "Enterprise", "FSPEC17", "ISPEC17", "Server"]),
       kernels=st.lists(st.tuples(st.sampled_from(["streaming", "branchy", "matrix"]),
                                  _kernel_params), min_size=1, max_size=5),
       seed=st.integers(min_value=0, max_value=(1 << 31) - 1),
       interval=st.integers(min_value=0, max_value=10_000),
       silent=st.booleans(),
       registers=st.sampled_from([16, 32]))
@settings(max_examples=50, deadline=None)
def test_workload_spec_serialization_round_trips(name, suite, kernels, seed,
                                                 interval, silent, registers):
    spec = WorkloadSpec(name=name, suite=suite, kernels=kernels, seed=seed,
                        external_write_interval=interval,
                        external_writes_silent=silent, num_registers=registers,
                        metadata={"origin": "property-test"})
    rebuilt = WorkloadSpec.from_dict(_json_round_trip(spec.to_dict()))
    assert rebuilt == spec
    assert all(isinstance(recipe, tuple) for recipe in rebuilt.kernels)


@st.composite
def load_site_strategy(draw):
    load_modes = [AddressingMode.PC_RELATIVE, AddressingMode.STACK_RELATIVE,
                  AddressingMode.REG_RELATIVE]
    site = LoadSiteStats(draw(_pcs), draw(st.sampled_from(load_modes)))
    site.dynamic_count = draw(st.integers(min_value=0, max_value=1 << 20))
    site.first_address = draw(st.one_of(st.none(), _addresses))
    site.first_value = draw(st.one_of(st.none(), _values))
    site.stable = draw(st.booleans())
    site.last_seq = draw(st.one_of(st.none(), st.integers(min_value=0, max_value=1 << 30)))
    for label in site.distance_buckets:
        site.distance_buckets[label] = draw(st.integers(min_value=0, max_value=1 << 20))
    site.distinct_addresses = set(draw(st.lists(_addresses, max_size=8)))
    return site


@given(sites=st.lists(load_site_strategy(), max_size=6, unique_by=lambda s: s.pc),
       total=st.integers(min_value=0, max_value=1 << 30))
@settings(max_examples=50, deadline=None)
def test_global_stable_report_serialization_round_trips(sites, total):
    report = GlobalStableReport({site.pc: site for site in sites}, total)
    rebuilt = GlobalStableReport.from_dict(_json_round_trip(report.to_dict()))
    assert rebuilt.to_dict() == report.to_dict()
    assert rebuilt.summary() == report.summary()
    assert rebuilt.global_stable_pcs() == report.global_stable_pcs()


@given(st.integers(min_value=1, max_value=200), st.integers(min_value=0, max_value=10_000))
@settings(max_examples=50, deadline=None)
def test_vm_trace_sequence_numbers_are_dense(budget, seed):
    from repro.workloads.suites import workload_specs_for_suite
    from repro.workloads.generator import generate_trace
    spec = workload_specs_for_suite("Client")[seed % 3]
    trace = generate_trace(spec, num_instructions=budget)
    sequence = [d.seq for d in trace.instructions]
    assert sequence == list(range(len(sequence)))


# ------------------------------------------------- bench statistics helpers

_samples = st.lists(
    st.floats(min_value=-1e9, max_value=1e9,
              allow_nan=False, allow_infinity=False, width=64),
    min_size=1, max_size=40)


@given(_samples)
@settings(max_examples=100, deadline=None)
def test_median_matches_statistics_module_and_is_bounded(values):
    import statistics

    from repro.analysis.stats_utils import median

    result = median(values)
    assert min(values) <= result <= max(values)
    # The linear-interpolated 50th percentile is exactly the textbook median
    # (middle element, or the midpoint of the two middle elements).
    assert result == pytest.approx(statistics.median(values), abs=1e-6)
    # Order independence: the helper sorts internally.
    assert median(list(reversed(sorted(values)))) == result


@given(_samples, st.floats(min_value=-1e6, max_value=1e6,
                           allow_nan=False, allow_infinity=False))
@settings(max_examples=100, deadline=None)
def test_median_abs_deviation_invariances(values, shift):
    from repro.analysis.stats_utils import median_abs_deviation

    mad = median_abs_deviation(values)
    assert mad >= 0.0
    if len(values) < 2:
        assert mad == 0.0, "spread of fewer than two samples is defined as 0"
    assert median_abs_deviation([v for v in values for _ in (0, 1)]) \
        == pytest.approx(mad, abs=1e-6), "duplicating every sample keeps MAD"
    # Translation invariance: shifting every sample leaves the spread alone.
    assert median_abs_deviation([v + shift for v in values]) \
        == pytest.approx(mad, abs=max(1e-6, abs(shift) * 1e-9))
    assert median_abs_deviation([values[0]] * len(values)) == 0.0


@given(st.lists(st.floats(min_value=-1e9, max_value=1e9, allow_nan=False,
                          allow_infinity=False, width=64),
                min_size=1, max_size=40),
       st.floats(min_value=0.0, max_value=1.0),
       st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=100, deadline=None)
def test_percentile_is_monotone_and_clamped(values, f1, f2):
    from repro.analysis.stats_utils import _percentile

    data = sorted(values)
    low, high = sorted((f1, f2))
    p_low, p_high = _percentile(data, low), _percentile(data, high)
    # Monotone in the requested fraction, and always inside the data range
    # (the clamp exists precisely because interpolation rounding can escape).
    assert p_low <= p_high
    assert data[0] <= p_low <= data[-1]
    assert _percentile(data, 0.0) == data[0]
    assert _percentile(data, 1.0) == data[-1]
    assert _percentile([], 0.5) == 0.0
