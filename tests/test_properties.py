"""Property-based tests (hypothesis) for core data structures and invariants."""

from hypothesis import given, settings, strategies as st

from repro.analysis.stats_utils import box_whisker_summary, geomean
from repro.core import AddressMonitorTable, ConstableConfig, StableLoadDetector
from repro.isa.instruction import MemOperand, AddressingMode
from repro.isa.registers import STACK_REGISTERS
from repro.memory.cache import CacheConfig, SetAssociativeCache
from repro.workloads.vm import SparseMemory

_addresses = st.integers(min_value=0, max_value=(1 << 44) - 1)
_values = st.integers(min_value=0, max_value=(1 << 64) - 1)
_pcs = st.integers(min_value=0x1000, max_value=0xFFFFFF)


@given(st.lists(st.tuples(_addresses, _values), min_size=1, max_size=50))
@settings(max_examples=50, deadline=None)
def test_sparse_memory_reads_back_last_write(writes):
    memory = SparseMemory()
    shadow = {}
    for address, value in writes:
        memory.write(address, value)
        shadow[address & ~0x7] = value
    for word, value in shadow.items():
        assert memory.read(word) == value


@given(st.lists(_addresses, min_size=1, max_size=200))
@settings(max_examples=50, deadline=None)
def test_cache_occupancy_never_exceeds_capacity(addresses):
    cache = SetAssociativeCache(CacheConfig("L1", 16 * 64, 4, line_size=64))
    for address in addresses:
        if not cache.access(address):
            cache.fill(address)
    assert cache.resident_lines() <= 16
    assert cache.stats.hits + cache.stats.misses == len(addresses)


@given(st.lists(st.tuples(_pcs, _addresses, _values), min_size=1, max_size=100))
@settings(max_examples=50, deadline=None)
def test_sld_confidence_is_always_within_counter_range(executions):
    config = ConstableConfig(confidence_threshold=8)
    sld = StableLoadDetector(config)
    for pc, address, value in executions:
        entry = sld.record_execution(pc, address, value)
        assert 0 <= entry.confidence <= config.confidence_max
    assert sld.tracked_loads() <= config.sld_entries


@given(st.lists(st.tuples(_addresses, _pcs), min_size=1, max_size=200))
@settings(max_examples=50, deadline=None)
def test_amt_capacity_invariants(insertions):
    config = ConstableConfig(confidence_threshold=8)
    amt = AddressMonitorTable(config)
    for address, pc in insertions:
        amt.insert(address, pc)
        assert amt.tracked_lines() <= config.amt_entries
    for address, _ in insertions:
        assert len(amt.lookup(address)) <= config.amt_pcs_per_entry


@given(st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=1, max_size=30))
@settings(max_examples=100, deadline=None)
def test_geomean_is_bounded_by_min_and_max(values):
    result = geomean(values)
    assert min(values) - 1e-9 <= result <= max(values) + 1e-9


@given(st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=50))
@settings(max_examples=100, deadline=None)
def test_box_whisker_summary_ordering(values):
    summary = box_whisker_summary(values)
    tolerance = 1e-9 + 1e-9 * max(abs(v) for v in values)
    assert summary["min"] <= summary["q1"] <= summary["median"] <= summary["q3"] <= summary["max"]
    assert summary["min"] - tolerance <= summary["mean"] <= summary["max"] + tolerance


@given(base=st.one_of(st.none(), st.integers(min_value=0, max_value=15)),
       index=st.one_of(st.none(), st.integers(min_value=0, max_value=15)),
       scale=st.sampled_from([1, 2, 4, 8]),
       disp=st.integers(min_value=-4096, max_value=1 << 30))
@settings(max_examples=200, deadline=None)
def test_addressing_mode_classification_is_total_and_consistent(base, index, scale, disp):
    operand = MemOperand(base=base, index=index, scale=scale, disp=disp)
    mode = operand.addressing_mode()
    registers = operand.address_registers()
    if not registers:
        assert mode is AddressingMode.PC_RELATIVE
    elif all(r in STACK_REGISTERS for r in registers):
        assert mode is AddressingMode.STACK_RELATIVE
    else:
        assert mode is AddressingMode.REG_RELATIVE


@given(st.integers(min_value=1, max_value=200), st.integers(min_value=0, max_value=10_000))
@settings(max_examples=50, deadline=None)
def test_vm_trace_sequence_numbers_are_dense(budget, seed):
    from repro.workloads.suites import workload_specs_for_suite
    from repro.workloads.generator import generate_trace
    spec = workload_specs_for_suite("Client")[seed % 3]
    trace = generate_trace(spec, num_instructions=budget)
    sequence = [d.seq for d in trace.instructions]
    assert sequence == list(range(len(sequence)))
