"""Golden fixture pinning ``repro query`` table formatting.

Like the golden stats snapshots, a committed text fixture makes formatting
drift in the query tables fail loudly: the synthetic warehouse below is
fully deterministic (fixed keys, fixed counters, no live sweep), so the
rendered overview, group-by and speedup tables must reproduce
``tests/golden/query_tables.txt`` byte-for-byte.

When a change *intentionally* alters the table format, refresh the fixture
and review the diff:

    PYTHONPATH=src python tests/test_query_golden.py --refresh
"""

from __future__ import annotations

import contextlib
import io
import tempfile
from pathlib import Path

import pytest

from repro.cli import main
from repro.experiments.cache import SCHEMA_VERSION
from repro.experiments.warehouse import WarehouseRow, WarehouseWriter

#: Where the committed snapshot lives.
GOLDEN_PATH = Path(__file__).parent / "golden" / "query_tables.txt"

#: The deterministic synthetic warehouse: two configs over four workloads
#: across two suites, with fixed counters chosen so every aggregate (geomean,
#: median, speedup join) exercises a non-trivial value.
_ROWS = [
    ("baseline", "client_00", "Client", 1000, 2500),
    ("baseline", "client_01", "Client", 1200, 2500),
    ("baseline", "server_00", "Server", 1400, 2500),
    ("baseline", "server_01", "Server", 1600, 2500),
    ("constable", "client_00", "Client", 800, 2500),
    ("constable", "client_01", "Client", 1000, 2500),
    ("constable", "server_00", "Server", 1100, 2500),
    ("constable", "server_01", "Server", 1300, 2500),
]

#: The argv of every pinned table, in fixture order.
_QUERIES = (
    ["query"],
    ["query", "--metric", "ipc", "--group-by", "config"],
    ["query", "--metric", "ipc", "--agg", "median", "--group-by", "suite"],
    ["query", "--speedup-over", "baseline", "--group-by", "suite"],
    ["query", "--kind", "result", "--suite", "Client", "--metric", "cycles",
     "--agg", "sum", "--group-by", "workload"],
)


def _build_warehouse(directory: str) -> None:
    writer = WarehouseWriter(directory)
    for index, (config, workload, suite, cycles, instructions) in \
            enumerate(_ROWS):
        row = WarehouseRow(
            key=f"{index:02d}" + "0" * 62, kind="result", workload=workload,
            suite=suite, config=config, cycles=cycles,
            instructions=instructions, ipc=instructions / cycles,
            coverage=0.25 + index / 100.0, power=100.0 + 10.0 * index,
            l1d_accesses=500 + index, schema=SCHEMA_VERSION)
        assert writer.append(row)


def render_tables() -> str:
    """Every pinned query table rendered against the synthetic warehouse."""
    sections = []
    with tempfile.TemporaryDirectory() as tmp:
        _build_warehouse(tmp)
        for argv in _QUERIES:
            buffer = io.StringIO()
            with contextlib.redirect_stdout(buffer):
                code = main(argv + ["--cache-dir", tmp])
            assert code == 0, argv
            sections.append("$ repro " + " ".join(argv) + "\n"
                            + buffer.getvalue())
    return "\n".join(sections)


def test_query_tables_match_golden_fixture():
    assert GOLDEN_PATH.is_file(), (
        f"missing golden fixture {GOLDEN_PATH}; generate it with "
        f"`PYTHONPATH=src python tests/test_query_golden.py --refresh`")
    expected = GOLDEN_PATH.read_text(encoding="utf-8")
    actual = render_tables()
    if actual != expected:
        drift = [f"  expected: {exp!r}\n  actual:   {act!r}"
                 for exp, act in zip(expected.splitlines(),
                                     actual.splitlines()) if exp != act]
        raise AssertionError(
            "repro query table output drifted from tests/golden/"
            "query_tables.txt.  If intentional, refresh with "
            "`PYTHONPATH=src python tests/test_query_golden.py --refresh` "
            "and review the diff.\n" + "\n".join(drift[:10]))


def test_query_table_output_is_path_free():
    """The fixture stays machine-independent: no tmp paths leak into it."""
    text = render_tables()
    assert "/tmp" not in text
    assert "repro-cache" not in text


def refresh() -> None:
    """Rewrite the golden fixture from the current formatting code."""
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(render_tables(), encoding="utf-8")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--refresh", action="store_true",
                        help="rewrite tests/golden/query_tables.txt")
    if parser.parse_args().refresh:
        refresh()
    else:
        parser.error("nothing to do; pass --refresh to rewrite the fixture")
