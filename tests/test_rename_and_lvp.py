"""Tests for the RAT, rename optimizations, MRN, value predictors, ELAR and RFP."""

from repro.isa.instruction import DynamicInstruction, MemOperand, OpClass, StaticInstruction
from repro.isa.registers import RBP, RSP
from repro.lvp.eves import EvesConfig, EvesPredictor
from repro.lvp.llvp import LipastiPredictor
from repro.prior.elar import EarlyLoadAddressResolver
from repro.prior.rfp import RegisterFilePrefetcher
from repro.rename.memory_renaming import MemoryRenamer, MemoryRenamingConfig
from repro.rename.optimizations import OptimizationKind, RenameOptimizationConfig, RenameOptimizer
from repro.rename.rat import RegisterAliasTable


def _dyn(opclass, pc=0x100, dest=None, srcs=(), imm=0, mem=None, cond="", target=None):
    static = StaticInstruction(pc=pc, opclass=opclass, dest=dest, srcs=srcs, imm=imm,
                               mem=mem, branch_target=target, cond=cond)
    return DynamicInstruction(seq=0, static=static, next_pc=pc + 4)


# -------------------------------------------------------------------------- RAT

def test_rat_tracks_latest_producer():
    rat = RegisterAliasTable(16)
    rat.set_producer(3, "op_a")
    rat.set_producer(3, "op_b")
    assert rat.producer_of(3) == "op_b"
    rat.clear_producer(3, "op_a")   # not the latest: no effect
    assert rat.producer_of(3) == "op_b"
    rat.clear_producer(3, "op_b")
    assert rat.producer_of(3) is None


def test_rat_rebuild_from_window():
    rat = RegisterAliasTable(8)
    window = [("op1", 1), ("op2", 2), ("op3", 1)]
    rat.rebuild([w for w, _ in window], dest_of=lambda op: dict(window)[op])
    assert rat.producer_of(1) == "op3"
    assert rat.producer_of(2) == "op2"


# ---------------------------------------------------------------- optimizations

def test_move_elimination_classification():
    optimizer = RenameOptimizer()
    assert optimizer.classify(_dyn(OpClass.MOVE_REG, dest=1, srcs=(2,))) is OptimizationKind.MOVE_ELIMINATION


def test_zero_and_constant_idiom_classification():
    optimizer = RenameOptimizer()
    assert optimizer.classify(_dyn(OpClass.MOVE_IMM, dest=1, imm=0)) is OptimizationKind.ZERO_ELIMINATION
    assert optimizer.classify(_dyn(OpClass.MOVE_IMM, dest=1, imm=7)) is OptimizationKind.CONSTANT_FOLDING


def test_branch_folding_and_nop_elimination():
    optimizer = RenameOptimizer()
    jump = _dyn(OpClass.JUMP, target=0x2000, cond="always")
    assert optimizer.classify(jump) is OptimizationKind.BRANCH_FOLDING
    assert optimizer.classify(_dyn(OpClass.NOP)) is OptimizationKind.NOP_ELIMINATION


def test_loads_and_alu_are_not_optimized():
    optimizer = RenameOptimizer()
    load = _dyn(OpClass.LOAD, dest=1, mem=MemOperand(base=RBP, disp=-8))
    alu = _dyn(OpClass.ALU, dest=1, srcs=(2, 3))
    assert optimizer.classify(load) is OptimizationKind.NONE
    assert optimizer.classify(alu) is OptimizationKind.NONE
    assert optimizer.optimized_count() == 0


def test_optimizations_can_be_disabled():
    optimizer = RenameOptimizer(RenameOptimizationConfig(move_elimination=False,
                                                         zero_elimination=False,
                                                         constant_folding=False,
                                                         branch_folding=False))
    assert optimizer.classify(_dyn(OpClass.MOVE_REG, dest=1, srcs=(2,))) is OptimizationKind.NONE
    assert optimizer.classify(_dyn(OpClass.MOVE_IMM, dest=1, imm=0)) is OptimizationKind.NONE


# -------------------------------------------------------------------------- MRN

def test_memory_renamer_learns_store_load_pair():
    mrn = MemoryRenamer(MemoryRenamingConfig(confidence_threshold=2))
    for seq in range(0, 40, 10):
        mrn.observe_store(store_pc=0x500, address=0x9000, seq=seq)
        mrn.observe_load(load_pc=0x600, address=0x9000, seq=seq + 5)
    assert mrn.predicted_store_pc(0x600) == 0x500


def test_memory_renamer_unrelated_load_not_predicted():
    mrn = MemoryRenamer()
    mrn.observe_load(load_pc=0x600, address=0x9000, seq=10)
    assert mrn.predicted_store_pc(0x600) is None


def test_memory_renamer_accuracy_accounting():
    mrn = MemoryRenamer()
    mrn.record_prediction(True)
    mrn.record_prediction(False)
    assert mrn.accuracy() == 0.5


# ------------------------------------------------------------------------- EVES

def test_eves_predicts_constant_value_after_training():
    eves = EvesPredictor(EvesConfig(stride_confidence_threshold=4, vtage_confidence_threshold=4))
    for _ in range(10):
        eves.train(0x700, 1234, branch_history=0)
    prediction = eves.predict(0x700, branch_history=0)
    assert prediction.predicted and prediction.value == 1234


def test_eves_predicts_strided_values():
    eves = EvesPredictor(EvesConfig(stride_confidence_threshold=4, vtage_confidence_threshold=30))
    value = 0
    for _ in range(10):
        eves.train(0x704, value)
        value += 8
    prediction = eves.predict(0x704)
    assert prediction.predicted and prediction.value == value


def test_eves_does_not_predict_random_values():
    eves = EvesPredictor()
    values = [17, 9134, 223, 8, 99123, 42, 7, 3131]
    for value in values:
        eves.train(0x708, value)
    assert eves.predict(0x708).predicted is False


def test_eves_outcome_accounting():
    eves = EvesPredictor(EvesConfig(stride_confidence_threshold=2, vtage_confidence_threshold=2))
    for _ in range(6):
        eves.train(0x70C, 5)
    prediction = eves.predict(0x70C)
    assert eves.record_outcome(prediction, 5) is True
    assert eves.record_outcome(prediction, 6) is False
    assert eves.coverage() > 0
    assert 0.0 <= eves.accuracy() <= 1.0


def test_llvp_last_value_prediction():
    llvp = LipastiPredictor()
    for _ in range(4):
        llvp.train(0x710, 77)
    assert llvp.predict(0x710).predicted
    llvp.train(0x710, 78)
    assert llvp.predict(0x710).predicted is False


# ------------------------------------------------------------------- ELAR / RFP

def test_elar_resolves_stack_and_pc_relative_loads():
    elar = EarlyLoadAddressResolver()
    stack_load = _dyn(OpClass.LOAD, dest=1, mem=MemOperand(base=RSP, disp=-8))
    pc_load = _dyn(OpClass.LOAD, dest=1, mem=MemOperand(base=None, disp=0x1000))
    reg_load = _dyn(OpClass.LOAD, dest=1, mem=MemOperand(base=3, disp=0))
    assert elar.can_resolve_early(stack_load)
    assert elar.can_resolve_early(pc_load)
    assert not elar.can_resolve_early(reg_load)
    assert 0.0 < elar.coverage() <= 1.0
    assert elar.latency_savings() > 0


def test_rfp_learns_stable_address():
    rfp = RegisterFilePrefetcher()
    for _ in range(5):
        rfp.train(0x720, 0x8000)
    assert rfp.predict_address(0x720) == 0x8000
    prefetched = rfp.issue_prefetch(0x720)
    assert rfp.verify(prefetched, 0x8000) is True
    assert rfp.verify(prefetched, 0x9000) is False
    assert 0.0 <= rfp.accuracy() <= 1.0


def test_rfp_learns_strided_address():
    rfp = RegisterFilePrefetcher()
    for i in range(6):
        rfp.train(0x724, 0x1000 + i * 64)
    assert rfp.predict_address(0x724) == 0x1000 + 6 * 64
