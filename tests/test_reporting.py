"""Coverage for the plain-text reporting helpers (``experiments/reporting.py``).

Pins the summary-table formatting the figure harnesses and the CLI embed in
their output, plus the dedup-stats rendering the orchestrator surfaces.
"""

from __future__ import annotations

import pytest

from repro.experiments.orchestrator import DedupStats
from repro.experiments.reporting import (
    format_dedup_stats,
    format_mapping,
    format_percent,
    format_speedup,
    format_table,
    per_suite_table,
)


# ---------------------------------------------------------------- primitives

@pytest.mark.parametrize("value, digits, expected", [
    (0.051, 1, "5.1%"),
    (0.0, 1, "0.0%"),
    (1.0, 0, "100%"),
    (0.12345, 3, "12.345%"),
])
def test_format_percent(value, digits, expected):
    assert format_percent(value, digits=digits) == expected


@pytest.mark.parametrize("value, digits, expected", [
    (1.051, 3, "1.051x"),
    (2.0, 1, "2.0x"),
    (0.994, 3, "0.994x"),
])
def test_format_speedup(value, digits, expected):
    assert format_speedup(value, digits=digits) == expected


# -------------------------------------------------------------------- tables

def test_format_table_pads_columns_and_draws_rule():
    text = format_table(["name", "value"], [("a", 1), ("longer", 22)],
                        title="t")
    lines = text.splitlines()
    assert lines[0] == "t"
    assert lines[1] == "name   | value"
    assert lines[2] == "-------+------"
    assert lines[3] == "a      | 1    "
    assert lines[4] == "longer | 22   "
    # All body lines align to identical width.
    assert len({len(line) for line in lines[1:]}) == 1


def test_format_table_without_title_has_no_title_line():
    text = format_table(["h"], [("x",)])
    assert text.splitlines()[0] == "h"


def test_format_table_stringifies_arbitrary_cells():
    text = format_table(["k", "v"], [("pi", 3.14159), ("none", None)])
    assert "3.14159" in text and "None" in text


def test_format_mapping_is_a_two_column_table():
    text = format_mapping({"cycles": 100, "ipc": 1.5}, title="stats")
    lines = text.splitlines()
    assert lines[0] == "stats"
    assert lines[1].startswith("metric")
    assert any(line.startswith("cycles") for line in lines)
    assert any(line.startswith("ipc") for line in lines)


def test_per_suite_table_uses_figure_layout_and_dashes_missing_cells():
    per_suite = {
        "Client": {"eves": 1.1, "constable": 1.2},
        "Server": {"eves": 1.05},
    }
    text = per_suite_table(per_suite, title="fig")
    lines = text.splitlines()
    assert lines[1].split("|")[0].strip() == "config"
    assert "Client" in lines[1] and "Server" in lines[1]
    constable_row = next(line for line in lines if line.startswith("constable"))
    assert "1.200x" in constable_row
    assert constable_row.rstrip().endswith("-"), "missing cell renders as dash"


# --------------------------------------------------------------- dedup stats

def _stats() -> DedupStats:
    return DedupStats(figures=["fig11", "fig13"], planned=20, unique=16,
                      cache_warm=5, executed=11)


def test_format_dedup_stats_from_dataclass():
    text = format_dedup_stats(_stats())
    lines = text.splitlines()
    assert lines[0] == "orchestrated wave"
    rendered = {line.split("|")[0].strip(): line.split("|")[1].strip()
                for line in lines[3:]}
    assert rendered == {
        "figures": "2",
        "jobs planned": "20",
        "unique after dedup": "16",
        "shared across figures": "4",
        "cache-warm": "5",
        "executed": "11",
    }


def test_format_dedup_stats_from_json_payload_matches_live_rendering():
    """Bench reports loaded back from JSON render identically to live runs."""
    stats = _stats()
    assert (format_dedup_stats(stats.to_dict(), title="x")
            == format_dedup_stats(stats, title="x"))


def test_format_dedup_stats_computes_deduped_when_absent():
    payload = {"figures": ["a"], "planned": 7, "unique": 4,
               "cache_warm": 0, "executed": 4}
    text = format_dedup_stats(payload)
    assert any("shared across figures" in line and "3" in line
               for line in text.splitlines())


def test_format_dedup_stats_custom_title():
    assert format_dedup_stats(_stats(), title="wave").splitlines()[0] == "wave"


# ------------------------------------------------------ persisted dedup block

def test_format_persisted_dedup_renders_rates():
    from repro.experiments.reporting import format_persisted_dedup

    text = format_persisted_dedup({"waves": 3, "planned": 20, "unique": 14,
                                   "deduped": 6, "cache_warm": 7,
                                   "executed": 7})
    lines = text.splitlines()
    assert lines[0] == "orchestrated waves (all processes)"
    rendered = {line.split("|")[0].strip(): line.split("|")[1].strip()
                for line in lines[3:]}
    assert rendered == {
        "waves": "3",
        "jobs planned": "20",
        "unique after dedup": "14",
        "dedup rate": "30.0%",
        "cache-warm": "7",
        "cache-warm rate": "50.0%",
        "executed": "7",
    }


def test_format_persisted_dedup_handles_zero_denominators():
    from repro.experiments.reporting import format_persisted_dedup

    text = format_persisted_dedup({"waves": 0, "planned": 0, "unique": 0,
                                   "cache_warm": 0, "executed": 0})
    assert text.count("n/a") == 2, "both rates degrade to n/a, never divide"
    # `deduped` is derived when the ledger block predates the computed key.
    derived = format_persisted_dedup({"waves": 1, "planned": 5, "unique": 4,
                                      "cache_warm": 2, "executed": 2})
    assert any("dedup rate" in line and "20.0%" in line
               for line in derived.splitlines())
