"""Tests for the content-addressed on-disk result cache.

Covers the cold/warm protocol (cold run populates the store, warm run returns
equal results with zero simulations), key invalidation on configuration and
schema changes, corruption tolerance, and cache sharing between the serial and
parallel runner flavours.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.cache import ResultCache, config_fingerprint
from repro.experiments.configs import baseline_config, constable_config
from repro.experiments.parallel import ParallelExperimentRunner
from repro.experiments.runner import ExperimentRunner
from repro.pipeline.cpu import OutOfOrderCore
from repro.workloads.suites import workload_specs_for_suite

SUITES = ("Client", "Server")
INSTRUCTIONS = 1200


def _make_runner(cache: ResultCache) -> ExperimentRunner:
    return ExperimentRunner(per_suite=1, instructions=INSTRUCTIONS,
                            suites=SUITES, cache=cache)


@pytest.fixture()
def simulation_counter(monkeypatch):
    """Counts OutOfOrderCore.run invocations in this process."""
    calls = {"count": 0}
    original = OutOfOrderCore.run

    def counted(self):
        calls["count"] += 1
        return original(self)

    monkeypatch.setattr(OutOfOrderCore, "run", counted)
    return calls


def test_cold_run_populates_store_warm_run_simulates_nothing(tmp_path, simulation_counter):
    cold = _make_runner(ResultCache(tmp_path))
    cold_results = cold.run_config("baseline", baseline_config())
    expected_jobs = len(cold.workloads())
    assert simulation_counter["count"] == expected_jobs
    assert cold.cache.stats.stores == expected_jobs
    assert len(cold.cache) == expected_jobs

    warm = _make_runner(ResultCache(tmp_path))
    warm_results = warm.run_config("baseline", baseline_config())
    assert simulation_counter["count"] == expected_jobs, "warm run must not simulate"
    assert warm.cache.stats.hits == expected_jobs
    assert warm.cache.stats.misses == 0
    assert set(warm_results) == set(cold_results)
    for workload in cold_results:
        assert warm_results[workload] == cold_results[workload]


def test_runner_memory_cache_short_circuits_disk(tmp_path, simulation_counter):
    runner = _make_runner(ResultCache(tmp_path))
    first = runner.run_config("baseline", baseline_config())
    hits_after_cold = runner.cache.stats.hits
    second = runner.run_config("baseline", baseline_config())
    # Second call is served from WorkloadRun.results: no new sims, no new disk hits.
    assert simulation_counter["count"] == len(runner.workloads())
    assert runner.cache.stats.hits == hits_after_cold
    for workload in first:
        assert second[workload] is first[workload]


def test_config_field_change_invalidates_key(tmp_path):
    cache = ResultCache(tmp_path)
    spec = workload_specs_for_suite("Client")[0]
    base_key = cache.key_for(baseline_config(), spec, INSTRUCTIONS, 16)
    assert cache.key_for(baseline_config(), spec, INSTRUCTIONS, 16) == base_key
    changed = {
        "fetch_width": baseline_config(fetch_width=7),
        "flush_penalty": baseline_config(flush_penalty=11),
        "lvp": baseline_config(lvp="eves"),
        "constable": constable_config(),
        "memory_renaming": baseline_config(enable_memory_renaming=False),
    }
    keys = {name: cache.key_for(config, spec, INSTRUCTIONS, 16)
            for name, config in changed.items()}
    assert base_key not in keys.values()
    assert len(set(keys.values())) == len(keys), "every field change yields a distinct key"
    # Trace parameters and the workload itself are part of the key too.
    assert cache.key_for(baseline_config(), spec, INSTRUCTIONS + 1, 16) != base_key
    assert cache.key_for(baseline_config(), spec, INSTRUCTIONS, 32) != base_key
    other_spec = workload_specs_for_suite("Server")[0]
    assert cache.key_for(baseline_config(), other_spec, INSTRUCTIONS, 16) != base_key


def test_schema_version_invalidates_key_and_entry(tmp_path, simulation_counter):
    cold = _make_runner(ResultCache(tmp_path, schema_version=1))
    cold.run_config("baseline", baseline_config())
    sims_after_cold = simulation_counter["count"]

    spec = cold.workloads()[next(iter(cold.workloads()))].spec
    key_v1 = ResultCache(tmp_path, schema_version=1).key_for(
        baseline_config(), spec, INSTRUCTIONS, 16)
    key_v2 = ResultCache(tmp_path, schema_version=2).key_for(
        baseline_config(), spec, INSTRUCTIONS, 16)
    assert key_v1 != key_v2

    bumped = _make_runner(ResultCache(tmp_path, schema_version=2))
    bumped.run_config("baseline", baseline_config())
    assert simulation_counter["count"] == sims_after_cold + len(bumped.workloads()), \
        "a schema bump must invalidate every prior entry"


def test_corrupt_entry_is_a_miss_and_gets_rewritten(tmp_path, simulation_counter):
    cache = ResultCache(tmp_path)
    runner = _make_runner(cache)
    runner.run_config("baseline", baseline_config())
    sims = simulation_counter["count"]

    entry = next(cache.directory.glob("*/*.json"))
    entry.write_text("{not json", encoding="utf-8")

    warm = _make_runner(ResultCache(tmp_path))
    warm.run_config("baseline", baseline_config())
    assert simulation_counter["count"] == sims + 1, "only the corrupt entry re-simulates"
    assert json.loads(entry.read_text(encoding="utf-8"))["schema"] == cache.schema_version


def test_parallel_runner_shares_cache_with_serial(tmp_path, simulation_counter):
    with ParallelExperimentRunner(per_suite=1, instructions=INSTRUCTIONS,
                                  suites=SUITES, max_workers=2,
                                  cache=ResultCache(tmp_path)) as cold:
        cold_results = cold.run_config("baseline", baseline_config())
        assert cold.cache.stats.stores == len(cold_results)

    warm = _make_runner(ResultCache(tmp_path))
    warm_results = warm.run_config("baseline", baseline_config())
    assert simulation_counter["count"] == 0, "parent process never simulated"
    for workload in cold_results:
        assert warm_results[workload] == cold_results[workload]


def test_fingerprint_is_insertion_order_independent():
    config_a = baseline_config(stats_oracle_pcs={1, 2, 3})
    config_b = baseline_config(stats_oracle_pcs={3, 2, 1})
    assert config_fingerprint(config_a) == config_fingerprint(config_b)


def test_cache_clear_removes_entries(tmp_path):
    cache = ResultCache(tmp_path)
    runner = _make_runner(cache)
    runner.run_config("baseline", baseline_config())
    assert len(cache) > 0
    removed = cache.clear()
    assert removed > 0
    assert len(cache) == 0
    assert cache.get(cache.key_for(baseline_config(),
                                   workload_specs_for_suite("Client")[0],
                                   INSTRUCTIONS, 16)) is None
