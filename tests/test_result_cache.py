"""Tests for the content-addressed on-disk caches.

Covers the cold/warm protocol for all three entry kinds (single-thread
results, SMT pair results, Load Inspector reports — a cold run populates the
store, a warm run returns equal records with zero recomputation), key
invalidation on configuration and schema changes, corruption tolerance, cache
sharing between the serial and parallel runner flavours, and the LRU size-cap
GC (``REPRO_CACHE_MAX_MB``).
"""

from __future__ import annotations

import hashlib
import json
import threading
import warnings

import pytest

from repro.experiments.cache import (
    CACHE_MAX_MB_ENV,
    ReportCache,
    ResultCache,
    config_fingerprint,
)
from repro.experiments.configs import baseline_config, constable_config
from repro.experiments.parallel import ParallelExperimentRunner
from repro.experiments.runner import ExperimentRunner
from repro.pipeline.cpu import OutOfOrderCore
from repro.workloads.suites import workload_specs_for_suite

SUITES = ("Client", "Server")
INSTRUCTIONS = 1200


def _make_runner(cache: ResultCache) -> ExperimentRunner:
    return ExperimentRunner(per_suite=1, instructions=INSTRUCTIONS,
                            suites=SUITES, cache=cache)


@pytest.fixture()
def simulation_counter(monkeypatch):
    """Counts OutOfOrderCore.run invocations in this process."""
    calls = {"count": 0}
    original = OutOfOrderCore.run

    def counted(self):
        calls["count"] += 1
        return original(self)

    monkeypatch.setattr(OutOfOrderCore, "run", counted)
    return calls


def test_cold_run_populates_store_warm_run_simulates_nothing(tmp_path, simulation_counter):
    cold = _make_runner(ResultCache(tmp_path))
    cold_results = cold.run_config("baseline", baseline_config())
    expected_jobs = len(cold.workloads())
    assert simulation_counter["count"] == expected_jobs
    assert cold.cache.stats.stores == expected_jobs
    assert len(cold.cache) == expected_jobs

    warm = _make_runner(ResultCache(tmp_path))
    warm_results = warm.run_config("baseline", baseline_config())
    assert simulation_counter["count"] == expected_jobs, "warm run must not simulate"
    assert warm.cache.stats.hits == expected_jobs
    assert warm.cache.stats.misses == 0
    assert set(warm_results) == set(cold_results)
    for workload in cold_results:
        assert warm_results[workload] == cold_results[workload]


def test_runner_memory_cache_short_circuits_disk(tmp_path, simulation_counter):
    runner = _make_runner(ResultCache(tmp_path))
    first = runner.run_config("baseline", baseline_config())
    hits_after_cold = runner.cache.stats.hits
    second = runner.run_config("baseline", baseline_config())
    # Second call is served from WorkloadRun.results: no new sims, no new disk hits.
    assert simulation_counter["count"] == len(runner.workloads())
    assert runner.cache.stats.hits == hits_after_cold
    for workload in first:
        assert second[workload] is first[workload]


def test_config_field_change_invalidates_key(tmp_path):
    cache = ResultCache(tmp_path)
    spec = workload_specs_for_suite("Client")[0]
    base_key = cache.key_for(baseline_config(), spec, INSTRUCTIONS, 16)
    assert cache.key_for(baseline_config(), spec, INSTRUCTIONS, 16) == base_key
    changed = {
        "fetch_width": baseline_config(fetch_width=7),
        "flush_penalty": baseline_config(flush_penalty=11),
        "lvp": baseline_config(lvp="eves"),
        "constable": constable_config(),
        "memory_renaming": baseline_config(enable_memory_renaming=False),
    }
    keys = {name: cache.key_for(config, spec, INSTRUCTIONS, 16)
            for name, config in changed.items()}
    assert base_key not in keys.values()
    assert len(set(keys.values())) == len(keys), "every field change yields a distinct key"
    # Trace parameters and the workload itself are part of the key too.
    assert cache.key_for(baseline_config(), spec, INSTRUCTIONS + 1, 16) != base_key
    assert cache.key_for(baseline_config(), spec, INSTRUCTIONS, 32) != base_key
    other_spec = workload_specs_for_suite("Server")[0]
    assert cache.key_for(baseline_config(), other_spec, INSTRUCTIONS, 16) != base_key


def test_schema_version_invalidates_key_and_entry(tmp_path, simulation_counter):
    cold = _make_runner(ResultCache(tmp_path, schema_version=1))
    cold.run_config("baseline", baseline_config())
    sims_after_cold = simulation_counter["count"]

    spec = cold.workloads()[next(iter(cold.workloads()))].spec
    key_v1 = ResultCache(tmp_path, schema_version=1).key_for(
        baseline_config(), spec, INSTRUCTIONS, 16)
    key_v2 = ResultCache(tmp_path, schema_version=2).key_for(
        baseline_config(), spec, INSTRUCTIONS, 16)
    assert key_v1 != key_v2

    bumped = _make_runner(ResultCache(tmp_path, schema_version=2))
    bumped.run_config("baseline", baseline_config())
    assert simulation_counter["count"] == sims_after_cold + len(bumped.workloads()), \
        "a schema bump must invalidate every prior entry"


def test_corrupt_entry_is_a_miss_and_gets_rewritten(tmp_path, simulation_counter):
    cache = ResultCache(tmp_path)
    runner = _make_runner(cache)
    runner.run_config("baseline", baseline_config())
    sims = simulation_counter["count"]

    entry = next(cache.directory.glob("*/*.json"))
    entry.write_text("{not json", encoding="utf-8")

    warm = _make_runner(ResultCache(tmp_path))
    warm.run_config("baseline", baseline_config())
    assert simulation_counter["count"] == sims + 1, "only the corrupt entry re-simulates"
    assert json.loads(entry.read_text(encoding="utf-8"))["schema"] == cache.schema_version


def test_parallel_runner_shares_cache_with_serial(tmp_path, simulation_counter):
    with ParallelExperimentRunner(per_suite=1, instructions=INSTRUCTIONS,
                                  suites=SUITES, max_workers=2,
                                  cache=ResultCache(tmp_path)) as cold:
        cold_results = cold.run_config("baseline", baseline_config())
        assert cold.cache.stats.stores == len(cold_results)

    warm = _make_runner(ResultCache(tmp_path))
    warm_results = warm.run_config("baseline", baseline_config())
    assert simulation_counter["count"] == 0, "parent process never simulated"
    for workload in cold_results:
        assert warm_results[workload] == cold_results[workload]


# -------------------------------------------------------------- SMT entries

def test_smt_cold_run_populates_store_warm_run_simulates_nothing(tmp_path, simulation_counter):
    cold = ExperimentRunner(per_suite=2, instructions=INSTRUCTIONS,
                            suites=SUITES, cache=ResultCache(tmp_path))
    cold_results = cold.run_smt_config("baseline", baseline_config())
    pairs = len(cold.smt_pairs())
    assert pairs == 2
    assert simulation_counter["count"] == pairs, "one SMT simulation per pair"
    assert cold.cache.stats.stores == pairs

    warm = ExperimentRunner(per_suite=2, instructions=INSTRUCTIONS,
                            suites=SUITES, cache=ResultCache(tmp_path))
    warm_results = warm.run_smt_config("baseline", baseline_config())
    assert simulation_counter["count"] == pairs, "warm SMT run must not simulate"
    assert warm.cache.stats.hits == pairs
    assert set(warm_results) == set(cold_results)
    for pair in cold_results:
        # Full-record equality: SimulationResult + per-thread IPCs round-trip
        # losslessly through the disk store.
        assert warm_results[pair] == cold_results[pair]


def test_smt_and_result_keys_never_collide(tmp_path):
    cache = ResultCache(tmp_path)
    spec_a = workload_specs_for_suite("Client")[0]
    spec_b = workload_specs_for_suite("Server")[0]
    single = cache.key_for(baseline_config(), spec_a, INSTRUCTIONS, 16)
    smt = cache.key_for_smt(baseline_config(), spec_a, spec_b, INSTRUCTIONS, 16)
    assert single != smt
    # The SMT key covers the pairing order and the second thread's base PC.
    swapped = cache.key_for_smt(baseline_config(), spec_b, spec_a, INSTRUCTIONS, 16)
    assert swapped != smt
    moved = cache.key_for_smt(baseline_config(), spec_a, spec_b, INSTRUCTIONS, 16,
                              second_base_pc=0x900000)
    assert moved != smt


# ------------------------------------------------------------ report entries

def test_report_cache_cold_run_populates_warm_run_inspects_nothing(tmp_path, monkeypatch):
    from repro.experiments import runner as runner_module

    calls = {"count": 0}
    original = runner_module.inspect_trace

    def counted(trace):
        calls["count"] += 1
        return original(trace)

    monkeypatch.setattr(runner_module, "inspect_trace", counted)

    cold = ExperimentRunner(per_suite=1, instructions=INSTRUCTIONS,
                            suites=SUITES, report_cache=ReportCache(tmp_path))
    cold_workloads = cold.workloads()
    assert calls["count"] == len(cold_workloads)
    assert cold.report_cache.stats.stores == len(cold_workloads)

    warm = ExperimentRunner(per_suite=1, instructions=INSTRUCTIONS,
                            suites=SUITES, report_cache=ReportCache(tmp_path))
    warm_workloads = warm.workloads()
    assert calls["count"] == len(cold_workloads), "warm run must not inspect"
    assert warm.report_cache.stats.hits == len(warm_workloads)
    for name, cold_run in cold_workloads.items():
        warm_run = warm_workloads[name]
        assert warm_run.report.to_dict() == cold_run.report.to_dict()
        assert warm_run.report.global_stable_pcs() == cold_run.report.global_stable_pcs()


def test_report_and_result_caches_share_a_directory(tmp_path, simulation_counter):
    runner = ExperimentRunner(per_suite=1, instructions=INSTRUCTIONS,
                              suites=SUITES, cache=ResultCache(tmp_path),
                              report_cache=ReportCache(tmp_path))
    runner.run_config("baseline", baseline_config())
    workloads = len(runner.workloads())
    # Kind-tagged keys: both namespaces coexist without collisions, and either
    # cache instance sees (and budgets) the whole directory.
    assert len(runner.cache) == 2 * workloads
    assert runner.cache.total_bytes() == runner.report_cache.total_bytes()


# ------------------------------------------------------------------------ GC

def test_gc_survivors_still_hit_and_evicted_entries_rebuild(tmp_path, simulation_counter):
    cache = ResultCache(tmp_path)
    runner = _make_runner(cache)
    runner.run_config("baseline", baseline_config())
    sims = simulation_counter["count"]
    total = cache.total_bytes()
    assert total > 0

    removed = cache.gc(max_mb=(total - 1) / (1024 * 1024))
    assert len(removed) == 1, "a cap one byte under the total evicts exactly the LRU entry"
    assert cache.stats.evictions == 1

    warm = _make_runner(ResultCache(tmp_path))
    warm.run_config("baseline", baseline_config())
    survivors = len(warm.workloads()) - 1
    assert warm.cache.stats.hits == survivors, "surviving entries must still validate"
    assert simulation_counter["count"] == sims + 1, "only the evicted entry re-simulates"


def test_gc_noop_without_cap_and_below_cap(tmp_path):
    cache = ResultCache(tmp_path)
    runner = _make_runner(cache)
    runner.run_config("baseline", baseline_config())
    entries = len(cache)
    assert cache.gc() == [], "no cap configured: GC must be a no-op"
    assert cache.gc(max_mb=1024) == [], "under the cap: GC must evict nothing"
    assert len(cache) == entries


def test_cache_hit_refreshes_lru_recency(tmp_path):
    import os
    import time

    cache = ResultCache(tmp_path)
    runner = _make_runner(cache)
    results = runner.run_config("baseline", baseline_config())
    ordered = cache.entries()
    oldest_path = ordered[0][0]
    # Age every entry far into the past, then touch the oldest via a hit.
    for index, (path, _, _) in enumerate(ordered):
        os.utime(path, (1_000_000 + index, 1_000_000 + index))
    oldest_key = oldest_path.stem
    assert cache.get(oldest_key) is not None
    assert cache.entries()[-1][0] == oldest_path, "a hit must move the entry to MRU"
    # GC under a tight cap now spares the hit entry.
    size_of_hit = next(size for path, _, size in cache.entries() if path == oldest_path)
    removed = cache.gc(max_mb=size_of_hit / (1024 * 1024))
    assert oldest_path not in removed
    assert cache.get(oldest_key) is not None


def test_undecodable_entry_is_not_promoted_to_mru(tmp_path):
    """A decode failure must not refresh recency, or the dead entry would
    survive every GC while valid entries around it get evicted."""
    import os

    cache = ResultCache(tmp_path)
    runner = _make_runner(cache)
    runner.run_config("baseline", baseline_config())
    entry = cache.entries()[0][0]
    payload = json.loads(entry.read_text(encoding="utf-8"))
    payload["result"] = {"nonsense": True}  # envelope valid, body undecodable
    entry.write_text(json.dumps(payload), encoding="utf-8")
    os.utime(entry, (1, 1))  # oldest entry in the directory

    misses_before = cache.stats.misses
    assert cache.get(entry.stem) is None
    assert cache.stats.misses == misses_before + 1
    assert cache.entries()[0][0] == entry, \
        "failed decode left the entry oldest, so the LRU GC evicts it first"


def test_env_cap_arms_auto_gc_on_put(tmp_path, monkeypatch):
    cache = ResultCache(tmp_path)
    runner = _make_runner(cache)
    runner.run_config("baseline", baseline_config())
    cap_mb = (cache.total_bytes() - 1) / (1024 * 1024)

    monkeypatch.setenv(CACHE_MAX_MB_ENV, str(cap_mb))
    capped = ResultCache(tmp_path)
    assert capped.max_mb == pytest.approx(cap_mb)
    runner2 = _make_runner(capped)
    runner2.run_config("constable", constable_config())
    assert capped.stats.evictions > 0, "puts over the cap must trigger eviction"
    assert capped.total_bytes() <= int(cap_mb * 1024 * 1024)


@pytest.mark.parametrize("raw", ["512MB", "-3", "0", "nan", "inf"])
def test_invalid_env_cap_warns_once_and_disables_the_cap(tmp_path, monkeypatch, raw):
    """A malformed REPRO_CACHE_MAX_MB must not kill runner construction — the
    cap is an optimisation; the variable is ignored with a single warning."""
    from repro.experiments import cache as cache_module

    monkeypatch.setattr(cache_module, "_WARNED_ENV_CAPS", set())
    monkeypatch.setenv(CACHE_MAX_MB_ENV, raw)
    with pytest.warns(RuntimeWarning, match=CACHE_MAX_MB_ENV):
        cache = ResultCache(tmp_path)
    assert cache.max_mb is None
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        again = ResultCache(tmp_path)  # second construction: no second warning
    assert again.max_mb is None


def test_explicit_invalid_max_mb_still_raises(tmp_path):
    """Leniency covers only the environment; a bad argument is a caller bug."""
    with pytest.raises(ValueError):
        ResultCache(tmp_path, max_mb=-1)
    with pytest.raises(ValueError):
        ResultCache(tmp_path, max_mb=0)


# -------------------------------------------------- shared-directory drift

def _synthetic_result(tag: str, padding: int = 0):
    """A minimal decodable SimulationResult (optionally padded to a size)."""
    from repro.pipeline.stats import PipelineStats, SimulationResult

    power_events = {f"pad{i}": i for i in range(padding)}
    return SimulationResult(trace_name=tag, config_name="synthetic", cycles=1,
                            instructions=1, stats=PipelineStats(),
                            power_events=power_events)


def _synthetic_key(tag: str) -> str:
    return hashlib.sha256(tag.encode("utf-8")).hexdigest()


def test_size_estimate_negative_drift_resyncs_from_disk(tmp_path):
    """Shrinking overwrites plus a stale estimate drove the incremental
    bookkeeping negative, which made every future cap comparison meaningless
    and skipped needed GC passes; drift now resyncs from a full scan."""
    cache = ResultCache(tmp_path, max_mb=64)
    key = _synthetic_key("drift")
    cache.put(key, _synthetic_result("drift", padding=400))
    # Pretend another process already evicted most of the directory, then
    # overwrite the big entry with a much smaller one: the delta is negative
    # and larger than the (stale) estimate.
    cache._size_estimate = 1
    cache.put(key, _synthetic_result("drift"))
    assert cache._size_estimate is not None
    assert cache._size_estimate >= 0
    assert cache._size_estimate == cache.total_bytes()


def test_gc_pass_resyncs_estimate_after_external_eviction(tmp_path):
    """A second writer evicting entries behind this cache's back leaves the
    incremental estimate stale-high; the next GC pass rescans and resyncs."""
    writer = ResultCache(tmp_path, max_mb=64)
    for index in range(6):
        writer.put(_synthetic_key(f"w{index}"), _synthetic_result(f"w{index}"))
    other = ResultCache(tmp_path)
    other.gc(max_mb=writer.total_bytes() / 2 / (1024 * 1024))
    stale = writer._size_estimate
    assert stale is not None and stale > writer.total_bytes()
    writer.gc(max_mb=64)
    assert writer._size_estimate == writer.total_bytes()


def test_two_writer_concurrent_gc_stress(tmp_path):
    """Two capped writers sharing one directory, each storing and GC-ing
    concurrently: the estimate must never go negative, no operation may raise,
    and the directory must converge under the cap with only valid entries."""
    cap_mb = 0.02  # ~20 KiB; entries are ~1 KiB, so GC fires constantly
    errors = []
    barrier = threading.Barrier(2)

    def writer(name: str) -> None:
        cache = ResultCache(tmp_path, max_mb=cap_mb)
        barrier.wait()
        try:
            for index in range(60):
                cache.put(_synthetic_key(f"{name}-{index}"),
                          _synthetic_result(f"{name}-{index}", padding=20))
                if cache._size_estimate is not None and cache._size_estimate < 0:
                    raise AssertionError("size estimate went negative")
                if index % 7 == 0:
                    cache.gc()
        except BaseException as error:  # pragma: no cover - failure path
            errors.append(error)

    threads = [threading.Thread(target=writer, args=(name,)) for name in "AB"]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors

    survivor = ResultCache(tmp_path, max_mb=cap_mb)
    survivor.gc()
    assert survivor.total_bytes() <= int(cap_mb * 1024 * 1024)
    report = survivor.verify()
    assert report.ok, report.as_dict()
    assert survivor._size_estimate == survivor.total_bytes()


def test_fingerprint_is_insertion_order_independent():
    config_a = baseline_config(stats_oracle_pcs={1, 2, 3})
    config_b = baseline_config(stats_oracle_pcs={3, 2, 1})
    assert config_fingerprint(config_a) == config_fingerprint(config_b)


def test_cache_clear_removes_entries(tmp_path):
    cache = ResultCache(tmp_path)
    runner = _make_runner(cache)
    runner.run_config("baseline", baseline_config())
    assert len(cache) > 0
    removed = cache.clear()
    assert removed > 0
    assert len(cache) == 0
    assert cache.get(cache.key_for(baseline_config(),
                                   workload_specs_for_suite("Client")[0],
                                   INSTRUCTIONS, 16)) is None
