"""Round-trip serialization tests for the records the result cache persists.

Every type that crosses a process or disk boundary must survive
``to_dict`` -> ``json`` -> ``from_dict`` without losing information:
:class:`PipelineStats`, :class:`SimulationResult`, :class:`GlobalStableReport`
(with its per-site statistics) and :class:`WorkloadSpec`.
"""

from __future__ import annotations

import json

from repro.analysis.load_inspector import GlobalStableReport, inspect_trace
from repro.pipeline.stats import PipelineStats, SimulationResult
from repro.workloads.suites import WorkloadSpec, all_workload_specs


def _json_round_trip(data):
    return json.loads(json.dumps(data))


# ------------------------------------------------------------------ PipelineStats

def test_pipeline_stats_round_trip_preserves_histogram():
    stats = PipelineStats(cycles=123, instructions_retired=456, loads_renamed=7)
    stats.record_sld_updates(0)
    stats.record_sld_updates(3)
    stats.record_sld_updates(3)
    rebuilt = PipelineStats.from_dict(_json_round_trip(stats.to_dict()))
    assert rebuilt == stats
    assert rebuilt.sld_update_cycles_histogram == {0: 1, 3: 2}
    assert rebuilt.average_sld_updates_per_cycle() == stats.average_sld_updates_per_cycle()


def test_pipeline_stats_from_dict_ignores_unknown_keys():
    stats = PipelineStats(cycles=5)
    data = stats.to_dict()
    data["counter_from_the_future"] = 99
    assert PipelineStats.from_dict(data) == stats


# --------------------------------------------------------------- SimulationResult

def test_simulation_result_round_trip_from_real_simulation(baseline_result):
    rebuilt = SimulationResult.from_dict(_json_round_trip(baseline_result.to_dict()))
    assert rebuilt == baseline_result
    assert rebuilt.ipc == baseline_result.ipc
    assert rebuilt.summary() == baseline_result.summary()


def test_simulation_result_round_trip_with_constable_stats(constable_result):
    rebuilt = SimulationResult.from_dict(_json_round_trip(constable_result.to_dict()))
    assert rebuilt == constable_result
    assert rebuilt.constable_stats == constable_result.constable_stats


def test_simulation_result_round_trip_preserves_none_sections():
    result = SimulationResult(trace_name="t", config_name="c", cycles=10,
                              instructions=20, stats=PipelineStats(cycles=10))
    rebuilt = SimulationResult.from_dict(_json_round_trip(result.to_dict()))
    assert rebuilt == result
    assert rebuilt.constable_stats is None and rebuilt.lvp_stats is None


def test_simulation_result_to_dict_is_a_deep_copy(baseline_result):
    data = baseline_result.to_dict()
    data["stats"]["cycles"] = -1
    data["memory_stats"]["service_levels"]["L1D"] = -1
    assert baseline_result.stats.cycles != -1
    assert baseline_result.memory_stats["service_levels"]["L1D"] != -1


# ------------------------------------------------------------- GlobalStableReport

def test_global_stable_report_round_trip(client_trace):
    report = inspect_trace(client_trace)
    rebuilt = GlobalStableReport.from_dict(_json_round_trip(report.to_dict()))
    assert rebuilt.to_dict() == report.to_dict()
    assert rebuilt.summary() == report.summary()
    assert rebuilt.global_stable_pcs() == report.global_stable_pcs()
    assert rebuilt.distance_distribution_by_mode() == report.distance_distribution_by_mode()
    for pc, site in report.sites.items():
        twin = rebuilt.sites[pc]
        assert twin.is_global_stable == site.is_global_stable
        assert twin.distinct_addresses == site.distinct_addresses
        assert twin.addressing_mode is site.addressing_mode


# ----------------------------------------------------------------- WorkloadSpec

def test_workload_spec_round_trip_for_all_90_specs():
    for spec in all_workload_specs():
        rebuilt = WorkloadSpec.from_dict(_json_round_trip(spec.to_dict()))
        assert rebuilt == spec, spec.name


def test_workload_spec_round_trip_preserves_kernel_tuples(tiny_spec):
    rebuilt = WorkloadSpec.from_dict(_json_round_trip(tiny_spec.to_dict()))
    assert rebuilt == tiny_spec
    assert all(isinstance(recipe, tuple) for recipe in rebuilt.kernels)
