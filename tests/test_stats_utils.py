"""Tests for the shared statistics helpers."""

import math

import pytest

from repro.analysis.stats_utils import (
    box_whisker_summary,
    filtered_geomean,
    geomean,
    speedup,
    weighted_fraction,
)


def test_geomean_of_identical_values():
    assert abs(geomean([2.0, 2.0, 2.0]) - 2.0) < 1e-12


def test_geomean_matches_closed_form():
    values = [1.0, 2.0, 4.0]
    assert abs(geomean(values) - 2.0) < 1e-12


def test_geomean_empty_returns_one():
    assert geomean([]) == 1.0


def test_geomean_rejects_non_positive():
    with pytest.raises(ValueError):
        geomean([1.0, 0.0])


def test_filtered_geomean_drops_non_positive_values():
    assert filtered_geomean([1.0, 2.0, 4.0]) == pytest.approx(2.0)
    assert filtered_geomean([0.0, -3.0, 2.0, 8.0]) == pytest.approx(4.0)


def test_filtered_geomean_default_when_nothing_positive():
    assert filtered_geomean([]) == 1.0
    assert filtered_geomean([0.0, -1.0]) == 1.0
    assert filtered_geomean([0.0], default=0.0) == 0.0


def test_speedup_ratio():
    assert speedup(200, 100) == 2.0
    with pytest.raises(ValueError):
        speedup(0, 10)


def test_weighted_fraction():
    assert weighted_fraction([1, 2], [4, 4]) == pytest.approx(0.375)
    assert weighted_fraction([], []) == 0.0


def test_box_whisker_summary_quartiles():
    summary = box_whisker_summary([1, 2, 3, 4, 5])
    assert summary["median"] == 3
    assert summary["q1"] == 2
    assert summary["q3"] == 4
    assert summary["min"] == 1 and summary["max"] == 5
    assert summary["mean"] == 3


def test_box_whisker_summary_empty():
    summary = box_whisker_summary([])
    assert summary["mean"] == 0.0
    assert summary["median"] == 0.0


def test_box_whisker_whiskers_clamp_to_observed_values():
    summary = box_whisker_summary([1, 1, 1, 1, 100])
    assert summary["whisker_high"] <= 100
    assert summary["whisker_low"] >= 1
    assert not math.isnan(summary["whisker_high"])
