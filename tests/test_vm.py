"""Unit tests for the functional VM and sparse memory."""

import pytest

from repro.isa.program import ProgramBuilder
from repro.isa.registers import RBP
from repro.workloads.vm import FunctionalVM, SparseMemory, default_memory_value


def test_sparse_memory_default_values_are_deterministic():
    memory = SparseMemory()
    assert memory.read(0x1000) == memory.read(0x1000)
    assert memory.read(0x1000) == default_memory_value(0x1000)
    assert not memory.is_written(0x1000)


def test_sparse_memory_word_alignment():
    memory = SparseMemory()
    memory.write(0x1004, 77)
    # Bytes within the same 8-byte word read the same value.
    assert memory.read(0x1000) == 77
    assert memory.is_written(0x1007)


def test_sparse_memory_initial_contents():
    memory = SparseMemory(initial={0x2000: 123})
    assert memory.read(0x2000) == 123


def test_vm_executes_alu_and_moves():
    builder = ProgramBuilder()
    builder.movi(0, 10)
    builder.movi(1, 32)
    builder.alu(2, (0, 1), op="add")
    builder.movr(3, 2)
    program = builder.build()
    vm = FunctionalVM(program)
    vm.run(4)
    assert vm.registers.read(2) == 42
    assert vm.registers.read(3) == 42


def test_vm_load_store_roundtrip():
    builder = ProgramBuilder()
    builder.movi(0, 0xABC)
    builder.store(0, base=None, disp=0x5000)
    builder.load(1, base=None, disp=0x5000)
    program = builder.build()
    vm = FunctionalVM(program)
    records = vm.run(3)
    assert vm.registers.read(1) == 0xABC
    assert records[1].is_store and records[1].store_value == 0xABC
    assert records[2].is_load and records[2].load_value == 0xABC
    assert records[2].address == 0x5000


def test_vm_effective_address_with_base_index_scale():
    builder = ProgramBuilder()
    builder.movi(0, 0x1000)
    builder.movi(1, 4)
    builder.load(2, base=0, index=1, scale=8, disp=0x10)
    program = builder.build()
    vm = FunctionalVM(program)
    records = vm.run(3)
    assert records[2].address == 0x1000 + 4 * 8 + 0x10


def test_vm_branch_taken_and_not_taken():
    builder = ProgramBuilder()
    builder.movi(0, 2)
    top = builder.here("top")
    builder.addi(0, 0, -1)
    builder.jnz(0, top)
    builder.nop()
    program = builder.build()
    vm = FunctionalVM(program)
    records = vm.run(6)
    branches = [r for r in records if r.is_branch]
    assert branches[0].branch_taken is True
    assert branches[1].branch_taken is False


def test_vm_loop_trace_length_and_halt():
    builder = ProgramBuilder()
    builder.movi(0, 1)
    builder.nop()
    program = builder.build()
    vm = FunctionalVM(program)
    records = vm.run(100)
    assert len(records) == 2
    assert vm.halted
    with pytest.raises(RuntimeError):
        vm.step()


def test_vm_stack_relative_addressing_uses_rbp():
    builder = ProgramBuilder()
    builder.movi(RBP, 0x7FFF0000)
    builder.movi(0, 5)
    builder.store(0, base=RBP, disp=-16)
    builder.load(1, base=RBP, disp=-16)
    vm = FunctionalVM(builder.build())
    vm.run(4)
    assert vm.registers.read(1) == 5


def test_vm_lcg_operation_changes_value():
    builder = ProgramBuilder()
    builder.movi(0, 1)
    builder.alu(0, (0,), op="lcg")
    builder.alu(0, (0,), op="lcg")
    vm = FunctionalVM(builder.build())
    vm.run(3)
    assert vm.registers.read(0) != 1


def test_vm_rejects_nonpositive_budget():
    builder = ProgramBuilder()
    builder.nop()
    vm = FunctionalVM(builder.build())
    with pytest.raises(ValueError):
        vm.run(0)


def test_vm_external_write_visible_to_later_loads():
    builder = ProgramBuilder()
    builder.load(0, base=None, disp=0x6000)
    builder.load(1, base=None, disp=0x6000)
    vm = FunctionalVM(builder.build())
    vm.step()
    vm.apply_external_write(0x6000, 999)
    record = vm.step()
    assert record.load_value == 999
