"""Differential and property battery for the columnar results warehouse.

The warehouse (:mod:`repro.experiments.warehouse`) is a derived analytics
index over the object store, and derived data earns trust only by proof of
losslessness.  Four layers of evidence here:

* **Codec properties** (hypothesis): the columnar encode/decode round-trips
  arbitrary rows exactly — unicode workload names, zero-cycle results,
  adversarial finite floats — and malformed segments are rejected whole
  rather than half-read.
* **The differential core**: after real sweeps at 1, 2 and 4 workers, under
  both execution engines, through a chaos-faulted partial-wave journal and
  its ``--resume``, after compaction and after ``rebuild``, every warehouse
  read must be **bit-identical** to deriving the same rows from full
  object-store decodes (:func:`scan_object_store`) — compared through JSON
  so float bits cannot hide behind repr.
* **Zero-decode instrumentation**: ``repro query`` on a warm warehouse is
  run with ``SimulationResult.from_dict``/``SmtResult.from_dict`` patched to
  explode, proving the read path touches no object-store body (the
  acceptance criterion of the warehouse issue).
* **Crash-safety**: torn JSONL tails are skipped, superseded compaction
  leftovers never double-count, two concurrent writer+compactor threads
  cannot corrupt the store, and ``repro warehouse verify`` flags a warehouse
  that disagrees with the cache journal.
"""

from __future__ import annotations

import json
import tempfile
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.experiments.cache import SCHEMA_VERSION, ResultCache
from repro.experiments.configs import baseline_config, constable_config
from repro.experiments.faults import FAULT_PLAN_ENV
from repro.experiments.parallel import (
    JOB_TIMEOUT_ENV,
    MAX_RETRIES_ENV,
    ParallelExperimentRunner,
)
from repro.experiments.runner import ExperimentRunner, SweepExecutionError
from repro.experiments.warehouse import (
    WAREHOUSE_ENV,
    WAREHOUSE_SCHEMA_VERSION,
    WarehouseRow,
    WarehouseWriter,
    aggregate_rows,
    canonical_rows,
    compact_warehouse,
    decode_rows,
    encode_rows,
    read_rows,
    rebuild_warehouse,
    scan_object_store,
    speedup_summary,
    verify_warehouse,
    warehouse_dir,
    warehouse_present,
    warehouse_stats,
)
from repro.pipeline.cpu import CORE_ENGINE_ENV
from repro.pipeline.smt import SmtResult
from repro.pipeline.stats import PipelineStats, SimulationResult

#: Reduced sweep shared by the differential tests: 2 workloads, short traces.
SUITES = ("Client", "Server")
INSTRUCTIONS = 1200


@pytest.fixture(autouse=True)
def _no_inherited_knobs(monkeypatch):
    """Tests opt into chaos/engine/warehouse overrides explicitly."""
    monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
    monkeypatch.delenv(MAX_RETRIES_ENV, raising=False)
    monkeypatch.delenv(JOB_TIMEOUT_ENV, raising=False)
    monkeypatch.delenv(CORE_ENGINE_ENV, raising=False)
    monkeypatch.delenv(WAREHOUSE_ENV, raising=False)


def _dump(rows):
    """Rows as a canonical JSON string: float bits compare exactly."""
    return json.dumps([row.to_dict() for row in rows], sort_keys=True)


def _run_sweep(cache_dir, workers=1):
    """One baseline+constable sweep committed to ``cache_dir``."""
    if workers > 1:
        runner = ParallelExperimentRunner(
            per_suite=1, instructions=INSTRUCTIONS, suites=SUITES,
            max_workers=workers, cache=ResultCache(cache_dir))
    else:
        runner = ExperimentRunner(per_suite=1, instructions=INSTRUCTIONS,
                                  suites=SUITES, cache=ResultCache(cache_dir))
    with runner:
        for name, factory in (("baseline", baseline_config),
                              ("constable", constable_config)):
            runner.run_config(name, factory())


def _synthetic_result(workload="client_00", config="baseline", cycles=100,
                      instructions=250):
    stats = PipelineStats()
    stats.loads_renamed = 10
    stats.eliminated_loads_retired = 3
    stats.value_predicted_loads = 1
    return SimulationResult(trace_name=workload, config_name=config,
                            cycles=cycles, instructions=instructions,
                            stats=stats, power_events={"l1d_accesses": 7})


def _synthetic_key(tag: str) -> str:
    import hashlib
    return hashlib.sha256(tag.encode("utf-8")).hexdigest()


# ------------------------------------------------------------ codec properties


_FINITE = st.floats(allow_nan=False, allow_infinity=False, width=64)
_NAME = st.text(max_size=24)  # unicode by default, including empty
_ROW = st.builds(
    WarehouseRow,
    key=st.text(alphabet="0123456789abcdef", min_size=8, max_size=64),
    kind=st.sampled_from(["result", "smt"]),
    workload=_NAME, suite=_NAME, config=_NAME,
    cycles=st.integers(min_value=0, max_value=2**63 - 1),
    instructions=st.integers(min_value=0, max_value=2**63 - 1),
    ipc=_FINITE, coverage=_FINITE, power=_FINITE,
    l1d_accesses=st.integers(min_value=0, max_value=2**63 - 1),
    schema=st.integers(min_value=0, max_value=10**6),
)


@settings(max_examples=50, deadline=None)
@given(rows=st.lists(_ROW, max_size=20))
def test_codec_round_trip_is_exact(rows):
    """encode → JSON → decode reproduces every row exactly (zero-cycle
    results, unicode names and adversarial finite floats included)."""
    payload = json.loads(json.dumps(encode_rows(rows)))
    assert decode_rows(payload) == rows


@settings(max_examples=25, deadline=None)
@given(rows=st.lists(_ROW, max_size=12))
def test_append_compact_equivalence(rows):
    """Whatever set of rows the writer appended, compaction never changes
    what a reader sees (the canonical dedup/sort makes both sides stable)."""
    with tempfile.TemporaryDirectory() as tmp:
        writer = WarehouseWriter(tmp)
        for row in rows:
            assert writer.append(row)
        before = read_rows(tmp)
        assert before == canonical_rows(rows)
        compact_warehouse(tmp)
        assert read_rows(tmp) == before
        # Compacting a compacted warehouse is a no-op.
        assert compact_warehouse(tmp) == 0
        assert read_rows(tmp) == before


def test_codec_rejects_malformed_segments():
    rows = [WarehouseRow.from_dict(_row_dict())]
    good = encode_rows(rows)
    with pytest.raises(ValueError):
        decode_rows({**good, "warehouse_schema": WAREHOUSE_SCHEMA_VERSION + 1})
    with pytest.raises(ValueError):
        decode_rows({**good, "columns": "nope"})
    ragged = json.loads(json.dumps(good))
    ragged["columns"]["ipc"] = []
    with pytest.raises(ValueError):
        decode_rows(ragged)
    missing = json.loads(json.dumps(good))
    del missing["columns"]["cycles"]
    with pytest.raises(ValueError):
        decode_rows(missing)


def _row_dict():
    return {"key": "ab" + "0" * 62, "kind": "result", "workload": "client_00",
            "suite": "Client", "config": "baseline", "cycles": 100,
            "instructions": 250, "ipc": 2.5, "coverage": 0.4, "power": 1.0,
            "l1d_accesses": 7, "schema": SCHEMA_VERSION}


# --------------------------------------------------------- differential core


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_warehouse_bit_identical_to_object_store(tmp_path, workers):
    """The tentpole differential: after a real sweep at N workers, the
    warehouse read equals a full object-store decode bit-for-bit — and stays
    equal after compaction and after a rebuild."""
    _run_sweep(tmp_path, workers=workers)
    reference = _dump(scan_object_store(tmp_path, SCHEMA_VERSION))
    assert warehouse_present(tmp_path)
    assert _dump(read_rows(tmp_path)) == reference
    compact_warehouse(tmp_path)
    assert _dump(read_rows(tmp_path)) == reference
    rebuild_warehouse(tmp_path, SCHEMA_VERSION)
    assert _dump(read_rows(tmp_path)) == reference
    report = verify_warehouse(tmp_path, SCHEMA_VERSION)
    assert report["missing"] == [] and report["extra"] == []


def test_both_engines_produce_identical_rows(tmp_path, monkeypatch):
    """Engine parity extends to the warehouse: the cycle engine's rows (keys
    included — engines are excluded from cache keys) equal the event
    engine's bit-for-bit."""
    _run_sweep(tmp_path / "event")
    monkeypatch.setenv(CORE_ENGINE_ENV, "cycle")
    _run_sweep(tmp_path / "cycle")
    event_rows = _dump(read_rows(tmp_path / "event"))
    cycle_rows = _dump(read_rows(tmp_path / "cycle"))
    assert event_rows == cycle_rows


def test_chaos_partial_wave_then_resume_agrees_with_journal(tmp_path,
                                                            monkeypatch):
    """A dead-lettered sweep journals its successes — and the warehouse must
    list exactly those journaled entries, before and after ``--resume``."""
    monkeypatch.setenv(FAULT_PLAN_ENV, json.dumps({
        "sim:baseline/client_00": {"kind": "raise", "times": 99,
                                   "scope": "anywhere"},
    }))
    with ParallelExperimentRunner(per_suite=1, instructions=INSTRUCTIONS,
                                  suites=SUITES, max_workers=2, max_retries=0,
                                  retry_backoff_seconds=0.0,
                                  cache=ResultCache(tmp_path)) as runner:
        with pytest.raises(SweepExecutionError):
            runner.run_config("baseline", baseline_config())

    # Partial wave: only server_00 was journaled; the warehouse agrees.
    partial = verify_warehouse(tmp_path, SCHEMA_VERSION)
    assert partial["entries"] == 1
    assert partial["missing"] == [] and partial["extra"] == []
    assert _dump(read_rows(tmp_path)) == _dump(
        scan_object_store(tmp_path, SCHEMA_VERSION))

    monkeypatch.delenv(FAULT_PLAN_ENV)
    resumed = ExperimentRunner(per_suite=1, instructions=INSTRUCTIONS,
                               suites=SUITES, cache=ResultCache(tmp_path))
    resumed.run_config("baseline", baseline_config())
    assert resumed.cache.stats.hits == 1    # server_00 came from the journal
    assert resumed.cache.stats.stores == 1  # only client_00 re-executed

    final = verify_warehouse(tmp_path, SCHEMA_VERSION)
    assert final["entries"] == 2
    assert final["missing"] == [] and final["extra"] == []
    assert _dump(read_rows(tmp_path)) == _dump(
        scan_object_store(tmp_path, SCHEMA_VERSION))


def test_query_aggregates_bit_identical_to_object_store_path(tmp_path):
    """The aggregates ``repro query`` serves (geomean/median rollups and the
    speedup join) are byte-identical whether the rows came from warehouse
    segments or from full object-store decodes."""
    _run_sweep(tmp_path, workers=2)
    compact_warehouse(tmp_path)
    tabular = read_rows(tmp_path)
    decoded = scan_object_store(tmp_path, SCHEMA_VERSION)
    for metric, agg, group in (("ipc", "geomean", "config"),
                               ("ipc", "median", "suite"),
                               ("coverage", "geomean", "config"),
                               ("power", "median", None),
                               ("cycles", "sum", "workload")):
        left = json.dumps(aggregate_rows(tabular, metric, agg=agg,
                                         group_by=group), sort_keys=True)
        right = json.dumps(aggregate_rows(decoded, metric, agg=agg,
                                          group_by=group), sort_keys=True)
        assert left == right, (metric, agg, group)
    assert (json.dumps(speedup_summary(tabular, group_by="suite"),
                       sort_keys=True)
            == json.dumps(speedup_summary(decoded, group_by="suite"),
                          sort_keys=True))


def test_smt_rows_round_trip_through_rebuild(tmp_path):
    """``put_smt`` rows (kind, joined workload/suite names) survive the
    object-store round-trip bit-for-bit."""
    cache = ResultCache(tmp_path)
    smt = SmtResult(result=_synthetic_result(workload="client_00+server_00",
                                             config="smt_baseline"),
                    per_thread_ipc=[1.25, 1.0])
    cache.put_smt(_synthetic_key("smt"), smt)
    cache.put(_synthetic_key("st"), _synthetic_result())
    reference = _dump(read_rows(tmp_path))
    (smt_row,) = [row for row in read_rows(tmp_path) if row.kind == "smt"]
    assert smt_row.workload == "client_00+server_00"
    assert smt_row.suite == "Client+Server"
    rebuild_warehouse(tmp_path, SCHEMA_VERSION)
    assert _dump(read_rows(tmp_path)) == reference


def test_query_reads_zero_object_store_decodes(tmp_path, monkeypatch, capsys):
    """Acceptance criterion: on a warm multi-sweep cache, ``repro query``
    must read only warehouse files.  Both record decoders are patched to
    explode, so a single object-store body read fails the test."""
    _run_sweep(tmp_path)
    cache = ResultCache(tmp_path)
    smt = SmtResult(result=_synthetic_result(workload="client_00+server_00",
                                             config="smt_baseline"),
                    per_thread_ipc=[1.0, 1.0])
    cache.put_smt(_synthetic_key("smt"), smt)
    compact_warehouse(tmp_path)

    def explode(cls_data):
        raise AssertionError("object-store body decoded on the query path")

    monkeypatch.setattr(SimulationResult, "from_dict", explode)
    monkeypatch.setattr(SmtResult, "from_dict", explode)
    for argv in (["query", "--cache-dir", str(tmp_path)],
                 ["query", "--cache-dir", str(tmp_path), "--json"],
                 ["query", "--cache-dir", str(tmp_path), "--metric", "ipc",
                  "--group-by", "suite"],
                 ["query", "--cache-dir", str(tmp_path), "--speedup-over",
                  "baseline", "--group-by", "suite"],
                 ["query", "--cache-dir", str(tmp_path), "--kind", "smt"]):
        assert main(argv) == 0, argv
        assert capsys.readouterr().out


def test_query_falls_back_to_object_store_without_warehouse(tmp_path,
                                                            monkeypatch,
                                                            capsys):
    """A pre-warehouse cache (appends disabled) still answers queries via the
    object-store fallback, and ``rebuild`` then migrates it losslessly."""
    monkeypatch.setenv(WAREHOUSE_ENV, "0")
    _run_sweep(tmp_path)
    assert not warehouse_present(tmp_path)
    assert main(["query", "--cache-dir", str(tmp_path), "--json"]) == 0
    fallback = capsys.readouterr().out
    monkeypatch.delenv(WAREHOUSE_ENV)

    rows, replaced = rebuild_warehouse(tmp_path, SCHEMA_VERSION)
    assert rows == 4 and replaced == 0
    assert warehouse_present(tmp_path)
    assert main(["query", "--cache-dir", str(tmp_path), "--json"]) == 0
    assert capsys.readouterr().out == fallback


# ----------------------------------------------------------- crash-safety


def test_torn_tail_line_is_skipped(tmp_path):
    writer = WarehouseWriter(tmp_path)
    row = WarehouseRow.from_dict(_row_dict())
    assert writer.append(row)
    with writer._path.open("a", encoding="utf-8") as handle:
        handle.write('{"key": "torn-mid-wri')  # crash mid-append
    assert read_rows(tmp_path) == [row]


def test_superseded_leftovers_never_double_count(tmp_path):
    """A compactor that died after writing its segment but before unlinking
    the sources leaves both on disk; readers must count each row once, and
    the next compaction removes the leftovers."""
    writer = WarehouseWriter(tmp_path)
    row = WarehouseRow.from_dict(_row_dict())
    assert writer.append(row)
    source_name = writer._path.name
    source_text = writer._path.read_text(encoding="utf-8")
    assert compact_warehouse(tmp_path) == 1
    # Resurrect the folded source, as if the unlink never happened.
    (warehouse_dir(tmp_path) / source_name).write_text(source_text,
                                                       encoding="utf-8")
    assert read_rows(tmp_path) == [row]
    summary = warehouse_stats(tmp_path)
    assert summary["rows"] == 1
    compact_warehouse(tmp_path)
    assert not (warehouse_dir(tmp_path) / source_name).exists()
    assert read_rows(tmp_path) == [row]


def test_two_writer_compaction_stress(tmp_path):
    """Two threads, each appending through its own cache and compacting
    concurrently: no operation may raise, and every key must survive."""
    errors = []
    barrier = threading.Barrier(2)

    def worker(name: str) -> None:
        cache = ResultCache(tmp_path)
        barrier.wait()
        try:
            for index in range(40):
                cache.put(_synthetic_key(f"{name}-{index}"),
                          _synthetic_result(config=name))
                if index % 7 == 0:
                    compact_warehouse(tmp_path)
        except BaseException as error:  # pragma: no cover - failure path
            errors.append(error)

    threads = [threading.Thread(target=worker, args=(name,)) for name in "AB"]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors

    compact_warehouse(tmp_path)
    rows = read_rows(tmp_path)
    assert len(rows) == 80
    assert {row.key for row in rows} == {
        _synthetic_key(f"{name}-{index}") for name in "AB"
        for index in range(40)}
    assert _dump(rows) == _dump(scan_object_store(tmp_path, SCHEMA_VERSION))


def test_stale_compaction_lock_does_not_wedge(tmp_path):
    """A lock from a dead compactor blocks one pass, is broken once stale,
    and the following pass proceeds."""
    writer = WarehouseWriter(tmp_path)
    writer.append(WarehouseRow.from_dict(_row_dict()))
    base = warehouse_dir(tmp_path)
    lock = base / ".compact.lock"
    lock.touch()
    assert compact_warehouse(tmp_path) == 0  # held: no fold
    assert lock.exists()
    import os
    old = 10_000.0
    os.utime(lock, (old, old))
    assert compact_warehouse(tmp_path) == 0  # stale: broken, still no fold
    assert not lock.exists()
    assert compact_warehouse(tmp_path) == 1  # and now the fold happens
    assert len(read_rows(tmp_path)) == 1


# ------------------------------------------------------ wiring and CLI layer


def test_env_toggle_disables_appends_only(tmp_path, monkeypatch):
    monkeypatch.setenv(WAREHOUSE_ENV, "off")
    cache = ResultCache(tmp_path)
    cache.put(_synthetic_key("quiet"), _synthetic_result())
    assert not warehouse_present(tmp_path)
    # Reads and rebuilds stay available with appends off.
    assert scan_object_store(tmp_path, SCHEMA_VERSION)
    rebuild_warehouse(tmp_path, SCHEMA_VERSION)
    assert warehouse_present(tmp_path)


def test_cache_clear_removes_warehouse(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(_synthetic_key("gone"), _synthetic_result())
    assert warehouse_present(tmp_path)
    assert cache.clear() >= 2  # the entry and its warehouse row file
    assert not warehouse_present(tmp_path)
    assert read_rows(tmp_path) == []


def test_append_failures_are_absorbed(tmp_path):
    """Warehouse I/O failure must never fail a put: the entry still lands."""
    cache = ResultCache(tmp_path)
    # A file where the warehouse directory should be makes every append fail.
    warehouse_dir(tmp_path).write_text("not a directory", encoding="utf-8")
    cache.put(_synthetic_key("ok"), _synthetic_result())
    assert cache.get(_synthetic_key("ok")) is not None
    assert not cache.warehouse.append(WarehouseRow.from_dict(_row_dict()))


def test_warehouse_verify_cli_exit_codes(tmp_path, capsys):
    _run_sweep(tmp_path)
    assert main(["warehouse", "verify", "--cache-dir", str(tmp_path)]) == 0
    capsys.readouterr()

    # Remove one warehouse row file -> a journaled entry loses its row.
    for path in warehouse_dir(tmp_path).glob("*.rows.jsonl"):
        path.unlink()
    assert main(["warehouse", "verify", "--cache-dir", str(tmp_path)]) == 1
    assert "missing" in capsys.readouterr().out
    assert main(["warehouse", "rebuild", "--cache-dir", str(tmp_path)]) == 0
    capsys.readouterr()
    assert main(["warehouse", "verify", "--cache-dir", str(tmp_path)]) == 0
    capsys.readouterr()

    # Evict an entry behind the warehouse's back: benign unless --strict.
    entry = next(iter(tmp_path.glob("*/*.json")))
    entry.unlink()
    assert main(["warehouse", "verify", "--cache-dir", str(tmp_path)]) == 0
    assert "benign" in capsys.readouterr().out
    assert main(["warehouse", "verify", "--strict",
                 "--cache-dir", str(tmp_path)]) == 1
    capsys.readouterr()


def test_cache_stats_reports_warehouse(tmp_path, capsys):
    _run_sweep(tmp_path)
    assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
    assert "warehouse" in capsys.readouterr().out
    assert main(["cache", "stats", "--json",
                 "--cache-dir", str(tmp_path)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["warehouse"]["present"] is True
    assert payload["warehouse"]["rows"] == 4
    assert payload["warehouse"]["by_kind"] == {"result": 4}
    # entries (envelope scan) and rows (columnar scan) agree.
    assert payload["warehouse"]["rows"] == payload["entries"]


def test_cache_gc_compacts_warehouse(tmp_path, capsys):
    _run_sweep(tmp_path)
    assert warehouse_stats(tmp_path)["row_files"] >= 1
    assert main(["cache", "gc", "--max-mb", "64",
                 "--cache-dir", str(tmp_path)]) == 0
    capsys.readouterr()
    summary = warehouse_stats(tmp_path)
    assert summary["row_files"] == 0
    assert summary["segments"] == 1
    assert summary["rows"] == 4


def test_query_rejects_unknown_engine_and_family(tmp_path):
    with pytest.raises(SystemExit):
        main(["query", "--cache-dir", str(tmp_path), "--engine", "quantum"])
    with pytest.raises(SystemExit):
        main(["query", "--cache-dir", str(tmp_path), "--family", "nope"])


def test_query_family_filter_selects_config_subset(tmp_path, capsys):
    cache = ResultCache(tmp_path)
    cache.put(_synthetic_key("a"), _synthetic_result(config="baseline"))
    cache.put(_synthetic_key("b"), _synthetic_result(config="constable"))
    cache.put(_synthetic_key("c"), _synthetic_result(config="not-a-family"))
    assert main(["query", "--cache-dir", str(tmp_path), "--family", "main",
                 "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert sorted(payload) == ["baseline", "constable"]


def test_figures_warehouse_harness(tmp_path, monkeypatch, capsys):
    from repro.experiments.figures import warehouse_speedup_summary
    _run_sweep(tmp_path)
    compact_warehouse(tmp_path)
    result = warehouse_speedup_summary(cache_dir=str(tmp_path))
    assert result["tabular"] is True
    assert result["rows"] == 4
    assert "constable" in result["speedups"]
    assert "GEOMEAN" in result["speedups"]["constable"]
    assert "warehouse" in result["text"]
    # Addressable through the CLI figure registry too.
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert main(["figures", "warehouse", "--cache-dir", str(tmp_path),
                 "--per-suite", "1", "--instructions",
                 str(INSTRUCTIONS)]) == 0
    assert "cross-sweep speedups" in capsys.readouterr().out
