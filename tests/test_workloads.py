"""Tests for workload kernels, suites, the generator and the trace container."""

import pytest

from repro.analysis import inspect_trace
from repro.isa.instruction import AddressingMode
from repro.workloads import (
    SUITE_NAMES,
    all_workload_specs,
    generate_trace,
    get_workload_spec,
    workload_specs_for_suite,
)
from repro.workloads.generator import build_workload_program
from repro.workloads.kernels import KERNEL_REGISTRY, KernelContext, create_kernel
from repro.workloads.suites import SUITE_TRACE_COUNTS, representative_specs


def test_suite_counts_match_paper_table4():
    assert SUITE_TRACE_COUNTS == {"Client": 22, "Enterprise": 14, "FSPEC17": 29,
                                  "ISPEC17": 11, "Server": 14}
    assert len(all_workload_specs()) == 90


def test_every_suite_has_specs():
    for suite in SUITE_NAMES:
        specs = workload_specs_for_suite(suite)
        assert len(specs) == SUITE_TRACE_COUNTS[suite]
        assert all(spec.suite == suite for spec in specs)


def test_get_workload_spec_lookup():
    spec = get_workload_spec("client_00")
    assert spec.suite == "Client"
    with pytest.raises(KeyError):
        get_workload_spec("nonexistent_workload")


def test_unknown_suite_raises():
    with pytest.raises(KeyError):
        workload_specs_for_suite("Mobile")


def test_representative_specs_are_suite_balanced():
    specs = representative_specs(per_suite=2)
    assert len(specs) == 2 * len(SUITE_NAMES)
    suites = {spec.suite for spec in specs}
    assert suites == set(SUITE_NAMES)


def test_kernel_registry_contains_all_kernels():
    expected = {"runtime_constant", "inlined_args", "tight_loop_readonly",
                "global_counters", "streaming", "pointer_chase", "random_access",
                "store_heavy", "branchy", "shared_data", "stack_churn",
                "chained_deref", "matrix"}
    assert expected == set(KERNEL_REGISTRY)


def test_create_kernel_rejects_unknown_name():
    import random
    with pytest.raises(KeyError):
        create_kernel("bogus", KernelContext(), random.Random(0))


def test_kernel_context_pinned_registers_are_unique():
    ctx = KernelContext(num_registers=16)
    allocated = set()
    while True:
        register = ctx.alloc_pinned()
        if register is None:
            break
        assert register not in allocated
        allocated.add(register)
    assert len(allocated) >= 3


def test_kernel_context_memory_allocations_do_not_overlap():
    ctx = KernelContext()
    first = ctx.alloc_globals(4)
    second = ctx.alloc_globals(2)
    assert second >= first + 4 * 8
    slot_a = ctx.alloc_stack_slot()
    slot_b = ctx.alloc_stack_slot()
    assert slot_a != slot_b


def test_build_workload_program_runs_all_kernels():
    recipes = [(name, {}) for name in sorted(KERNEL_REGISTRY)]
    program, ctx = build_workload_program(recipes, seed=3)
    assert len(program) > 50
    assert ctx.shared_addresses  # shared_data kernel contributed addresses


def test_generate_trace_basic_properties(tiny_spec):
    trace = generate_trace(tiny_spec, num_instructions=1500)
    assert len(trace) == 1500
    assert 0.05 < trace.load_fraction() < 0.6
    summary = trace.summary()
    assert summary["loads"] > 0 and summary["stores"] > 0 and summary["branches"] > 0


def test_generate_trace_is_deterministic(tiny_spec):
    first = generate_trace(tiny_spec, num_instructions=800)
    second = generate_trace(tiny_spec, num_instructions=800)
    assert [d.pc for d in first] == [d.pc for d in second]
    assert [d.load_value for d in first.loads()] == [d.load_value for d in second.loads()]


def test_generate_trace_contains_stable_loads(tiny_trace):
    report = inspect_trace(tiny_trace)
    assert report.global_stable_dynamic_fraction() > 0.2


def test_server_traces_contain_snoops(server_trace):
    assert len(server_trace.snoops) > 0
    for snoop in server_trace.snoops:
        assert snoop.after_seq <= len(server_trace)


def test_trace_slice_preserves_snoops(server_trace):
    sliced = server_trace.slice(0, len(server_trace) // 2)
    assert len(sliced) == len(server_trace) // 2
    assert all(s.after_seq <= sliced.instructions[-1].seq for s in sliced.snoops)


def test_trace_slice_rejects_empty():
    spec = workload_specs_for_suite("Client")[0]
    trace = generate_trace(spec, num_instructions=100)
    with pytest.raises(ValueError):
        trace.slice(50, 50)


def test_client_suites_have_more_stable_loads_than_spec_suites():
    client = generate_trace(workload_specs_for_suite("Client")[0], num_instructions=4000)
    fspec = generate_trace(workload_specs_for_suite("FSPEC17")[0], num_instructions=4000)
    client_fraction = inspect_trace(client).global_stable_dynamic_fraction()
    fspec_fraction = inspect_trace(fspec).global_stable_dynamic_fraction()
    assert client_fraction > fspec_fraction


def test_apx_register_budget_reduces_stack_relative_stable_loads():
    spec = workload_specs_for_suite("Client")[0]
    base = inspect_trace(generate_trace(spec, num_instructions=4000, num_registers=16))
    apx = inspect_trace(generate_trace(spec, num_instructions=4000, num_registers=32))
    base_stack = base.addressing_mode_breakdown()[AddressingMode.STACK_RELATIVE.value]
    apx_stack = apx.addressing_mode_breakdown()[AddressingMode.STACK_RELATIVE.value]
    assert apx_stack <= base_stack
    assert apx.total_dynamic_loads() <= base.total_dynamic_loads()


def test_workload_addressing_modes_are_diverse(client_trace):
    report = inspect_trace(client_trace)
    breakdown = report.addressing_mode_breakdown()
    present = [mode for mode, fraction in breakdown.items() if fraction > 0.02]
    assert len(present) >= 2
